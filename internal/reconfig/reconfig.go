// Package reconfig models the reconfigurable fabric of a RISPP processor:
// the Atom Containers (ACs) holding loaded Atoms, the single partial-
// reconfiguration port that re-loads one Atom at a time (SelectMap/ICAP in
// the paper's prototype), and the eviction of Atoms when all containers are
// occupied.
package reconfig

import (
	"fmt"
	"math/rand"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

// Cycle is a point in time or a duration, measured in processor clock
// cycles.
type Cycle = int64

// Default timing calibration. The paper's prototype reconfigures partial
// bitstreams of on average 60,488 bytes in on average 874.03 µs; with a
// 100 MHz processor clock this corresponds to an effective reconfiguration
// bandwidth of 69,205,863 bytes/s (the nominal SelectMap figure is 66 MB/s).
const (
	DefaultClockHz      = 100_000_000
	DefaultBandwidthBps = 69_205_863
)

// Timing converts bitstream sizes into reconfiguration latencies.
type Timing struct {
	ClockHz      int64
	BandwidthBps int64
}

// DefaultTiming returns the calibration used throughout the paper
// reproduction (100 MHz clock, avg Atom reload = 874.03 µs).
func DefaultTiming() Timing {
	return Timing{ClockHz: DefaultClockHz, BandwidthBps: DefaultBandwidthBps}
}

// LoadCycles returns the number of clock cycles needed to load a partial
// bitstream of the given size through the reconfiguration port.
func (t Timing) LoadCycles(bitstreamBytes int) Cycle {
	if t.ClockHz <= 0 || t.BandwidthBps <= 0 {
		panic("reconfig: Timing not initialized")
	}
	// cycles = bytes / bandwidth * clock, rounded to nearest.
	return (int64(bitstreamBytes)*t.ClockHz + t.BandwidthBps/2) / t.BandwidthBps
}

// Microseconds converts a cycle count to microseconds under this timing.
func (t Timing) Microseconds(c Cycle) float64 {
	return float64(c) / float64(t.ClockHz) * 1e6
}

// EvictionPolicy selects the victim Atom when a new Atom must be loaded into
// a fully occupied container array.
type EvictionPolicy int

const (
	// EvictLRU evicts the least recently used evictable Atom (default).
	EvictLRU EvictionPolicy = iota
	// EvictFIFO evicts the evictable Atom loaded longest ago.
	EvictFIFO
	// EvictRandom evicts a uniformly random evictable Atom (seeded).
	EvictRandom
)

func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRU:
		return "LRU"
	case EvictFIFO:
		return "FIFO"
	case EvictRandom:
		return "random"
	}
	return fmt.Sprintf("EvictionPolicy(%d)", int(p))
}

type slot struct {
	atom     isa.AtomID
	occupied bool
	loadedAt Cycle
	usedAt   Cycle
}

// Array models the Atom Containers. It tracks which Atom instance occupies
// which container, the aggregate availability vector, and use recency for
// eviction.
type Array struct {
	dim    int
	slots  []slot
	loaded molecule.Vector
	policy EvictionPolicy
	rng    *rand.Rand // lazily (re)seeded; only EvictRandom ever draws

	occupied int // occupied containers (an Atom never leaves except by eviction)
	peakOcc  int // maximum occupancy since Reset, for budget-sensitivity

	// Evictions counts Atoms displaced to make room for new loads.
	Evictions int
}

// NewArray creates an Atom Container array with n containers for an
// Atom-type space of dimension dim.
func NewArray(n, dim int, policy EvictionPolicy, seed int64) *Array {
	a := &Array{
		dim:    dim,
		slots:  make([]slot, n),
		loaded: molecule.New(dim),
		policy: policy,
	}
	a.seedRNG(seed)
	return a
}

// seedRNG (re)establishes the deterministic eviction RNG. Only EvictRandom
// ever draws from it, so the other policies skip the seeding entirely —
// rand.Seed walks the full 607-word LFG state and showed up at ~6% of a
// steady-state HEF run when paid on every Reset.
func (a *Array) seedRNG(seed int64) {
	if a.policy != EvictRandom {
		a.rng = nil
		return
	}
	if a.rng == nil {
		a.rng = rand.New(rand.NewSource(seed))
		return
	}
	a.rng.Seed(seed)
}

// Reset empties every container and restarts the eviction RNG from seed,
// reusing the backing storage — behaviorally identical to NewArray with the
// same parameters, but allocation-free in the steady state.
func (a *Array) Reset(seed int64) {
	for i := range a.slots {
		a.slots[i] = slot{}
	}
	a.loaded.Zero()
	a.seedRNG(seed)
	a.occupied = 0
	a.peakOcc = 0
	a.Evictions = 0
}

// Size returns the number of Atom Containers.
func (a *Array) Size() int { return len(a.slots) }

// Loaded returns the current availability vector a (shared; callers must
// not modify it).
func (a *Array) Loaded() molecule.Vector { return a.loaded }

// Free returns the number of unoccupied containers.
func (a *Array) Free() int {
	free := 0
	for _, s := range a.slots {
		if !s.occupied {
			free++
		}
	}
	return free
}

// Touch records that an execution at time now used Atoms of the given
// Molecule vector, refreshing recency for LRU eviction. For each required
// instance count the most-recently-used slots of that type are touched.
func (a *Array) Touch(atoms molecule.Vector, now Cycle) {
	for i := range a.slots {
		s := &a.slots[i]
		if s.occupied && atoms[int(s.atom)] > 0 {
			s.usedAt = now
		}
	}
}

// AppendTouchSlots appends to dst the indices of the slots Touch(atoms, ·)
// would stamp in the array's current occupancy. Callers that execute the
// same Molecule many times between array mutations (the Manager's per-burst
// Record path) precompute this list once per mutation and stamp through
// TouchSlots instead of rescanning every slot per burst.
func (a *Array) AppendTouchSlots(dst []int32, atoms molecule.Vector) []int32 {
	for i := range a.slots {
		s := &a.slots[i]
		if s.occupied && atoms[int(s.atom)] > 0 {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// TouchSlots stamps the given slot indices with now; idx must come from
// AppendTouchSlots with no Install/Reset in between.
func (a *Array) TouchSlots(idx []int32, now Cycle) {
	for _, i := range idx {
		a.slots[i].usedAt = now
	}
}

// CanInstall reports whether Install can place one more Atom: a free
// container exists, or some occupied container holds a spare instance not
// protected by needed. It returns false when every container is claimed by
// needed — a state only a superseded load schedule can run into, since the
// Molecule selection keeps |sup(needed)| ≤ #ACs. Callers with potentially
// stale loads (the reconfiguration port cannot abort an in-flight bitstream)
// must check CanInstall and discard the Atom instead of calling Install.
func (a *Array) CanInstall(needed molecule.Vector) bool {
	for _, s := range a.slots {
		if !s.occupied || a.loaded[int(s.atom)] > needed[int(s.atom)] {
			return true
		}
	}
	return false
}

// Install places a freshly reconfigured Atom into the array at time now. If
// every container is occupied, a victim is evicted first; Atoms whose type
// count is still required by needed are protected from eviction. Install
// panics if no victim exists — callers must guarantee |sup(needed)| ≤ #ACs
// (which the Molecule selection establishes) or guard with CanInstall.
func (a *Array) Install(atom isa.AtomID, needed molecule.Vector, now Cycle) {
	idx := -1
	for i := range a.slots {
		if !a.slots[i].occupied {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = a.victim(needed)
		evicted := a.slots[idx].atom
		a.loaded[int(evicted)]--
		a.Evictions++
	} else {
		a.occupied++
		if a.occupied > a.peakOcc {
			a.peakOcc = a.occupied
		}
	}
	a.slots[idx] = slot{atom: atom, occupied: true, loadedAt: now, usedAt: now}
	a.loaded[int(atom)]++
}

// PeakOccupancy returns the maximum number of simultaneously occupied
// containers since Reset. An array of at least this size would have made
// the identical install decisions (no eviction pressure below the peak),
// which is what delta-resimulation's budget-transfer check needs.
func (a *Array) PeakOccupancy() int { return a.peakOcc }

// ArrayState is an opaque deep copy of an Array's mutable state, produced
// by SaveInto and consumed by RestoreFrom. The arenas inside are reused
// across saves.
type ArrayState struct {
	slots     []slot
	loaded    molecule.Vector
	occupied  int
	peakOcc   int
	evictions int
}

// SaveInto copies the array's complete mutable state into dst.
func (a *Array) SaveInto(dst *ArrayState) {
	dst.slots = append(dst.slots[:0], a.slots...)
	if cap(dst.loaded) < a.dim {
		dst.loaded = a.loaded.Clone()
	} else {
		dst.loaded = dst.loaded[:a.dim]
		dst.loaded.CopyFrom(a.loaded)
	}
	dst.occupied = a.occupied
	dst.peakOcc = a.peakOcc
	dst.evictions = a.Evictions
}

// RestoreFrom overwrites the array's state with a saved one. The target may
// have a different container count: saved occupied slots beyond the target's
// size are rejected (the budget-transfer legality check guarantees the saved
// occupancy fits), extra target slots are cleared. The eviction RNG is
// reseeded to its power-on stream — a legal restore point precedes the first
// eviction, so the source array had not drawn from it either.
func (a *Array) RestoreFrom(src *ArrayState, seed int64) {
	n := copy(a.slots, src.slots)
	for _, s := range src.slots[n:] {
		if s.occupied {
			panic("reconfig: RestoreFrom: saved occupancy exceeds target array size")
		}
	}
	for i := n; i < len(a.slots); i++ {
		a.slots[i] = slot{}
	}
	a.loaded.CopyFrom(src.loaded)
	a.occupied = src.occupied
	a.peakOcc = src.peakOcc
	a.Evictions = src.evictions
	a.seedRNG(seed)
}

// PortState is an opaque deep copy of a Port's mutable state, produced by
// (*Port).SaveInto and consumed by RestoreFrom. The pending arena is reused
// across saves.
type PortState struct {
	inflight   isa.AtomID
	hasInflite bool
	completeAt Cycle
	pending    []isa.AtomID // unconsumed queue suffix
	readyAt    Cycle
	loads      int
	busyCycles Cycle
}

// SaveInto copies the port's complete mutable state into dst. Only the
// unconsumed part of the queue is captured.
func (p *Port) SaveInto(dst *PortState) {
	dst.inflight = p.inflight
	dst.hasInflite = p.hasInflite
	dst.completeAt = p.completeAt
	dst.pending = append(dst.pending[:0], p.pending[p.phead:]...)
	dst.readyAt = p.readyAt
	dst.loads = p.Loads
	dst.busyCycles = p.BusyCycles
}

// RestoreFrom overwrites the port's state with a saved one; the size source
// and timing are construction-time configuration and stay untouched.
func (p *Port) RestoreFrom(src *PortState) {
	p.inflight = src.inflight
	p.hasInflite = src.hasInflite
	p.completeAt = src.completeAt
	p.pending = append(p.pending[:0], src.pending...)
	p.phead = 0
	p.readyAt = src.readyAt
	p.Loads = src.loads
	p.BusyCycles = src.busyCycles
}

// victim picks the container to clear according to the eviction policy. A
// slot is evictable if removing its Atom still leaves at least needed[type]
// instances of that type loaded.
func (a *Array) victim(needed molecule.Vector) int {
	spare := func(s slot) bool {
		return a.loaded[int(s.atom)] > needed[int(s.atom)]
	}
	switch a.policy {
	case EvictRandom:
		var cands []int
		for i, s := range a.slots {
			if s.occupied && spare(s) {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			panic("reconfig: no evictable Atom Container (selection overcommitted)")
		}
		return cands[a.rng.Intn(len(cands))]
	default:
		best := -1
		var bestStamp Cycle
		for i, s := range a.slots {
			if !s.occupied || !spare(s) {
				continue
			}
			stamp := s.usedAt
			if a.policy == EvictFIFO {
				stamp = s.loadedAt
			}
			if best < 0 || stamp < bestStamp {
				best, bestStamp = i, stamp
			}
		}
		if best < 0 {
			panic("reconfig: no evictable Atom Container (selection overcommitted)")
		}
		return best
	}
}

// Port models the single reconfiguration port: Atom loads are serialized,
// one partial bitstream at a time. A new schedule replaces any pending loads
// but an in-flight reconfiguration always completes (partial bitstreams
// cannot be aborted midway).
type Port struct {
	is     *isa.ISA
	timing Timing
	sizeOf func(isa.AtomID) int // bitstream bytes per Atom

	inflight   isa.AtomID
	hasInflite bool
	completeAt Cycle
	pending    []isa.AtomID
	phead      int   // consumed prefix of pending (keeps the backing array)
	readyAt    Cycle // time the port becomes free to start the next load

	// Loads counts completed Atom reconfigurations.
	Loads int
	// BusyCycles accumulates cycles the port spent loading.
	BusyCycles Cycle
}

// NewPort creates an idle reconfiguration port for the given ISA. Load
// durations derive from the ISA's bitstream sizes; SetSizeSource can plug
// in an actual bitstream repository instead.
func NewPort(is *isa.ISA, timing Timing) *Port {
	return &Port{is: is, timing: timing, sizeOf: func(a isa.AtomID) int {
		return is.Atom(a).BitstreamBytes
	}}
}

// Reset returns the port to idle with nothing queued, reusing the pending
// buffer and keeping the size source — behaviorally identical to a freshly
// constructed Port with the same ISA and timing.
func (p *Port) Reset() {
	p.hasInflite = false
	p.completeAt = 0
	p.pending = p.pending[:0]
	p.phead = 0
	p.readyAt = 0
	p.Loads = 0
	p.BusyCycles = 0
}

// SetSizeSource overrides where the port reads partial-bitstream sizes
// from, e.g. a bitstream.Repository holding the generated images.
func (p *Port) SetSizeSource(sizeOf func(isa.AtomID) int) {
	if sizeOf == nil {
		panic("reconfig: nil size source")
	}
	p.sizeOf = sizeOf
}

// Schedule replaces the pending load sequence at time now. The in-flight
// load, if any, still completes first.
func (p *Port) Schedule(now Cycle, atoms []isa.AtomID) {
	p.pending = append(p.pending[:0], atoms...)
	p.phead = 0
	if now > p.readyAt {
		p.readyAt = now
	}
}

// Pending returns the Atoms scheduled but not yet started.
func (p *Port) Pending() []isa.AtomID { return p.pending[p.phead:] }

// Busy reports whether a reconfiguration is in flight or queued.
func (p *Port) Busy() bool { return p.hasInflite || len(p.pending) > p.phead }

func (p *Port) start() {
	if p.hasInflite || len(p.pending) <= p.phead {
		return
	}
	atom := p.pending[p.phead]
	p.phead++
	dur := p.timing.LoadCycles(p.sizeOf(atom))
	p.inflight = atom
	p.hasInflite = true
	p.completeAt = p.readyAt + dur
	p.BusyCycles += dur
}

// NextCompletion returns the time the next Atom finishes loading. ok is
// false when the port is idle with nothing queued.
func (p *Port) NextCompletion() (at Cycle, ok bool) {
	p.start()
	if !p.hasInflite {
		return 0, false
	}
	return p.completeAt, true
}

// Complete pops the in-flight load; it must only be called once simulation
// time has reached NextCompletion. It returns the loaded Atom and the
// completion time.
func (p *Port) Complete() (isa.AtomID, Cycle) {
	p.start()
	if !p.hasInflite {
		panic("reconfig: Complete on idle port")
	}
	atom, at := p.inflight, p.completeAt
	p.hasInflite = false
	p.readyAt = at
	p.Loads++
	return atom, at
}
