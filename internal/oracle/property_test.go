package oracle_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/oracle"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// genTriple draws one (hardware, workload, ACs) configuration from the fixed
// seed stream shared by every property test.
func genTriple(seed int64) (*isa.ISA, *workload.Trace, int) {
	r := rand.New(rand.NewSource(seed))
	is := oracle.GenHardware(r)
	tr := oracle.GenWorkload(r, is)
	return is, tr, oracle.GenNumACs(r)
}

// TestPureSoftwareScalesLinearly is the exact metamorphic relation of the
// base processor: scaling every burst count by k scales the burst part of
// the cycle count by exactly k (setups are unscaled), because pure-software
// execution has no cross-execution state.
func TestPureSoftwareScalesLinearly(t *testing.T) {
	const k = 3
	for seed := int64(0); seed < 60; seed++ {
		is, tr, _ := genTriple(seed)
		scaled := &workload.Trace{Name: tr.Name, Phases: make([]workload.Phase, len(tr.Phases))}
		var setups int64
		for i, p := range tr.Phases {
			setups += p.Setup
			sp := p
			sp.Bursts = append([]workload.Burst(nil), p.Bursts...)
			for b := range sp.Bursts {
				sp.Bursts[b].Count *= k
			}
			scaled.Phases[i] = sp
		}
		base := runSim(t, "software", is, 0, tr, sim.Options{})
		big := runSim(t, "software", is, 0, scaled, sim.Options{})
		if got, want := big.TotalCycles-setups, k*(base.TotalCycles-setups); got != want {
			t.Fatalf("seed %d: scaled burst cycles = %d, want %d = %d x base", seed, got, want, k)
		}
	}
}

// TestJournalReplayReproducesPhaseStats is the round-trip metamorphic
// relation of the journal: parsing the JSONL stream back and summarizing it
// must reproduce the phase statistics the run reported directly.
func TestJournalReplayReproducesPhaseStats(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		is, tr, acs := genTriple(seed)
		for _, sys := range []string{"HEF", "Molen", "software"} {
			var buf bytes.Buffer
			res := runSim(t, sys, is, acs, tr, sim.Options{Journal: &buf})
			events, err := sim.ReadJournal(&buf)
			if err != nil {
				t.Fatalf("seed %d, system %s: %v", seed, sys, err)
			}
			summary, err := sim.Summarize(events)
			if err != nil {
				t.Fatalf("seed %d, system %s: %v", seed, sys, err)
			}
			if len(summary.Phases) != len(res.Phases) {
				t.Fatalf("seed %d, system %s: journal reconstructs %d phases, run had %d",
					seed, sys, len(summary.Phases), len(res.Phases))
			}
			for i, p := range summary.Phases {
				want := res.Phases[i]
				if p.HotSpot != int(want.HotSpot) || p.Start != want.Start || p.End != want.End {
					t.Fatalf("seed %d, system %s: phase %d replayed as {hotspot %d, %d..%d}, run had {hotspot %d, %d..%d}",
						seed, sys, i, p.HotSpot, p.Start, p.End, want.HotSpot, want.Start, want.End)
				}
			}
		}
	}
}

// TestMolenNeverBeatsBestUpgrader pins the paper's baseline relation over
// the fixed corpus: the Molen-style runtime — which blocks SI execution
// until its full configuration is loaded — never finishes faster than the
// best of the four upgrading RISPP schedulers on the same fabric.
func TestMolenNeverBeatsBestUpgrader(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		is, tr, acs := genTriple(seed)
		molen := runSim(t, "Molen", is, acs, tr, sim.Options{}).TotalCycles
		best := int64(1) << 62
		bestSys := ""
		for _, sys := range []string{"FSFR", "ASF", "SJF", "HEF"} {
			if c := runSim(t, sys, is, acs, tr, sim.Options{}).TotalCycles; c < best {
				best, bestSys = c, sys
			}
		}
		if molen < best {
			t.Errorf("seed %d, %d ACs: Molen took %d cycles, beating %s at %d", seed, acs, molen, bestSys, best)
		}
	}
}

// TestMoreACsCanCostCycles pins a property the corpus FALSIFIED: adding an
// Atom Container does not always reduce cycles. With one more container the
// greedy selection picks larger Molecules whose longer reconfiguration
// never amortizes within short phases. Seed 1 under FSFR is a reproducer:
// growing the fabric from 2 to 3 containers makes the run slower. The test
// documents the counterexample; if it ever starts failing, the selection
// became monotone and EXPERIMENTS.md should be updated.
func TestMoreACsCanCostCycles(t *testing.T) {
	is, tr, _ := genTriple(1)
	small := runSim(t, "FSFR", is, 2, tr, sim.Options{})
	large := runSim(t, "FSFR", is, 3, tr, sim.Options{})
	if large.TotalCycles <= small.TotalCycles {
		t.Fatalf("counterexample gone: 3 ACs took %d cycles <= %d with 2 ACs — AC-monotonicity may hold now",
			large.TotalCycles, small.TotalCycles)
	}
	// Both runs still satisfy every structural invariant.
	for _, res := range []*sim.Result{small, large} {
		if err := oracle.Check(tr, is, res); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUpgradesCanRegressWithinPhase pins the second falsified property:
// within a single phase an SI's latency can go back UP, not just step down.
// Loading one selected SI's Atoms may evict spare Atoms (outside the
// protected sup) that another SI of the same hot spot was opportunistically
// composing with. Seed 7 under FSFR exhibits such a regression.
func TestUpgradesCanRegressWithinPhase(t *testing.T) {
	is, tr, acs := genTriple(7)
	res := runSim(t, "FSFR", is, acs, tr, sim.Options{Timeline: true})
	if err := oracle.Check(tr, is, res); err != nil {
		t.Fatal(err)
	}
	pi := 0
	last := map[int]int{}
	for _, e := range res.Timeline.Events {
		for pi < len(res.Phases)-1 && e.Cycle >= res.Phases[pi].End {
			pi++
			last = map[int]int{}
		}
		if prev, ok := last[e.SI]; ok && e.Latency > prev {
			return // regression found, as documented
		}
		last[e.SI] = e.Latency
	}
	t.Fatal("counterexample gone: no within-phase latency regression on seed 7 — non-regression may hold now")
}

// TestCheckRejectsCorruptedResults turns the invariant checker on itself:
// every class of corruption it claims to detect must actually trip it.
func TestCheckRejectsCorruptedResults(t *testing.T) {
	is, tr, acs := genTriple(3)
	fresh := func() *sim.Result {
		return runSim(t, "HEF", is, acs, tr, sim.Options{HistogramBucket: 50_000, Timeline: true})
	}
	if err := oracle.Check(tr, is, fresh()); err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func(*sim.Result){
		"total cycles":    func(r *sim.Result) { r.TotalCycles++ },
		"stall cycles":    func(r *sim.Result) { r.StallCycles++ },
		"dropped phase":   func(r *sim.Result) { r.Phases = r.Phases[:len(r.Phases)-1] },
		"shifted phase":   func(r *sim.Result) { r.Phases[0].Start++ },
		"wrong hot spot":  func(r *sim.Result) { r.Phases[0].HotSpot++ },
		"negative stalls": func(r *sim.Result) { r.StallCycles = -1; r.TotalCycles = oracle.BestCaseCycles(tr, is) - 1 },
	}
	for name, corrupt := range corruptions {
		res := fresh()
		corrupt(res)
		if err := oracle.Check(tr, is, res); err == nil {
			t.Errorf("corruption %q passed the checker", name)
		}
	}
}
