// Checkpoint-equivalence gate: a run served or resumed from a recorded
// delta-resimulation trail (sim.Trail) must be field-exact identical to a
// fresh from-power-on run at the same budget — including the JSONL journal
// byte for byte — across the oracle's seeded generators and all six
// run-time systems. A second corpus pins the scheduler kernels against the
// choose-based reference loop on the same generated hardware.
package oracle_test

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"rispp/internal/molecule"
	"rispp/internal/oracle"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

const checkpointSeeds = 60 // × systems × budgets ≈ 1.4k comparisons

// TestCheckpointEquivalenceGeneratedCorpus records a trail at one budget
// and satisfies neighboring budgets through the delta machinery — full
// skip where the trail transfers end to end, partial resume otherwise,
// with the resumed runtime deliberately dirtied first (the runtime-pool
// pattern) — comparing every artifact against a fresh run.
func TestCheckpointEquivalenceGeneratedCorpus(t *testing.T) {
	for seed := int64(0); seed < checkpointSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		is := oracle.GenHardware(r)
		tr := oracle.GenWorkload(r, is)
		acs := 1 + oracle.GenNumACs(r) // record at ≥1 so down-transfer exists
		ct, err := workload.Compile(tr, is)
		if err != nil {
			t.Fatal(err)
		}
		budgets := []int{acs, acs - 1, acs + 2, 2 * acs}

		for _, sys := range oracle.Systems {
			trail := new(sim.Trail)
			var recJournal bytes.Buffer
			rt := newRuntime(t, sys, is, acs, tr).(sim.Checkpointable)
			if err := sim.RunCompiledTrail(context.Background(), ct, rt,
				sim.Options{Journal: &recJournal}, new(sim.Result), trail); err != nil {
				t.Fatal(err)
			}

			for _, budget := range budgets {
				var wantJournal, gotJournal bytes.Buffer
				var want, got sim.Result
				if err := sim.RunCompiled(context.Background(), ct,
					newRuntime(t, sys, is, budget, tr),
					sim.Options{Journal: &wantJournal}, &want); err != nil {
					t.Fatal(err)
				}

				served, err := trail.Serve(ct, budget, sim.Options{Journal: &gotJournal}, &got)
				if err != nil {
					t.Fatal(err)
				}
				if !served {
					// Partial resume onto a dirtied runtime, recording the
					// new budget's trail alongside.
					crt := newRuntime(t, sys, is, budget, tr).(sim.Checkpointable)
					if err := sim.RunCompiled(context.Background(), ct, crt, sim.Options{}, new(sim.Result)); err != nil {
						t.Fatal(err)
					}
					rec := new(sim.Trail)
					used, err := sim.ResumeCompiled(context.Background(), ct, crt,
						sim.Options{Journal: &gotJournal}, &got, trail, rec)
					if err != nil {
						t.Fatal(err)
					}
					if !used {
						if err := sim.RunCompiledTrail(context.Background(), ct, crt,
							sim.Options{Journal: &gotJournal}, &got, rec); err != nil {
							t.Fatal(err)
						}
					}
					// The freshly recorded trail must now serve its own
					// budget exactly.
					var skipJournal bytes.Buffer
					var skip sim.Result
					served2, err := rec.Serve(ct, budget, sim.Options{Journal: &skipJournal}, &skip)
					if err != nil {
						t.Fatal(err)
					}
					if !served2 {
						t.Fatalf("seed %d, system %s, budget %d: re-recorded trail cannot serve its own budget",
							seed, sys, budget)
					}
					if err := oracle.DiffResults(&want, &skip); err != nil {
						t.Errorf("seed %d, system %s, budget %d (re-serve): %v", seed, sys, budget, err)
					}
					if !bytes.Equal(wantJournal.Bytes(), skipJournal.Bytes()) {
						t.Errorf("seed %d, system %s, budget %d (re-serve): journal bytes differ", seed, sys, budget)
					}
				}
				if err := oracle.DiffResults(&want, &got); err != nil {
					t.Errorf("seed %d, system %s, budget %d (recorded at %d): %v", seed, sys, budget, acs, err)
				}
				if !bytes.Equal(wantJournal.Bytes(), gotJournal.Bytes()) {
					t.Errorf("seed %d, system %s, budget %d (recorded at %d): journal bytes differ between fresh and delta run",
						seed, sys, budget, acs)
				}
			}
		}
	}
}

// TestKernelEquivalenceGeneratedCorpus pins the specialized scheduler
// kernels against the reference loop on the oracle's generated hardware —
// a richer Molecule-library distribution than the sched package's own
// random ISAs.
func TestKernelEquivalenceGeneratedCorpus(t *testing.T) {
	names := []string{"FSFR", "ASF", "SJF", "HEF", "HEF-unnorm"}
	for seed := int64(0); seed < checkpointSeeds; seed++ {
		r := rand.New(rand.NewSource(seed + 7919))
		is := oracle.GenHardware(r)
		dim := len(is.Atoms)

		var reqs []sched.Request
		for j := range is.SIs {
			si := &is.SIs[j]
			reqs = append(reqs, sched.Request{
				SI:       si,
				Selected: si.Molecules[r.Intn(len(si.Molecules))],
				Expected: int64(r.Intn(5000)),
			})
		}
		avail := molecule.New(dim)
		for a := 0; a < dim; a++ {
			avail[a] = r.Intn(3)
		}

		for _, name := range names {
			s, err := sched.New(name)
			if err != nil {
				t.Fatal(err)
			}
			got := sched.ScheduleInto(s, sched.NewScratch(), reqs, avail)
			want := sched.ScheduleReference(s, sched.NewScratch(), reqs, avail)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d, %s: kernel %v != reference %v", seed, name, got, want)
			}
			if err := sched.Valid(got, reqs, avail); err != nil {
				t.Errorf("seed %d, %s: invalid kernel schedule: %v", seed, name, err)
			}
		}
	}
}
