package oracle

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// BestCaseCycles returns the cycle count of the trace if every SI execution
// ran at its fastest Molecule from the first cycle on: the unreachable
// floor against which stall cycles are accounted.
func BestCaseCycles(tr *workload.Trace, is *isa.ISA) int64 {
	var c int64
	for i := range tr.Phases {
		p := &tr.Phases[i]
		c += p.Setup
		for _, b := range p.Bursts {
			c += int64(b.Count) * int64(is.SI(b.SI).Fastest().Latency+b.Gap)
		}
	}
	return c
}

// Check validates a simulation result against the structural properties of
// the paper's run-time-system model that must hold for every scheduler and
// every workload:
//
//   - conservation: per-SI executions equal the trace's totals, and
//     software + hardware executions partition them;
//   - phase structure: one stat per trace phase, matching hot spots,
//     starting at cycle 0, contiguous, ending at TotalCycles;
//   - the exact cycle identity TotalCycles = BestCaseCycles + StallCycles
//     (every cycle beyond the fastest-Molecule floor is a stall cycle);
//   - bounds: stalls are non-negative and pure software — the never-
//     upgrading 0-AC system — is an upper bound on cycles;
//   - timeline sanity (when collected): cycle-monotone, every latency
//     within [fastest Molecule, software trap], no null steps;
//   - histogram conservation (when collected): per-SI bucket totals equal
//     the per-SI execution counts.
func Check(tr *workload.Trace, is *isa.ISA, res *sim.Result) error {
	// Conservation.
	traceExecs := tr.Executions()
	gotExecs := res.Executions()
	for si, want := range traceExecs {
		if got := gotExecs[si]; got != want {
			return fmt.Errorf("oracle: SI %d executed %d times, trace has %d", si, got, want)
		}
	}
	for si, got := range gotExecs {
		if traceExecs[si] != got {
			return fmt.Errorf("oracle: SI %d executed %d times, trace has %d", si, got, traceExecs[si])
		}
		if sw, hw := res.SWExecutionsOf(si), res.HWExecutionsOf(si); sw+hw != got {
			return fmt.Errorf("oracle: SI %d: SW %d + HW %d executions do not partition total %d", si, sw, hw, got)
		}
	}

	// Phase structure.
	if len(res.Phases) != len(tr.Phases) {
		return fmt.Errorf("oracle: %d phase stats for %d trace phases", len(res.Phases), len(tr.Phases))
	}
	prevEnd := int64(0)
	for i, p := range res.Phases {
		if p.HotSpot != tr.Phases[i].HotSpot {
			return fmt.Errorf("oracle: phase %d ran hot spot %d, trace has %d", i, p.HotSpot, tr.Phases[i].HotSpot)
		}
		if p.Start != prevEnd {
			return fmt.Errorf("oracle: phase %d starts at %d, previous ended at %d", i, p.Start, prevEnd)
		}
		if p.End < p.Start {
			return fmt.Errorf("oracle: phase %d ends at %d before its start %d", i, p.End, p.Start)
		}
		prevEnd = p.End
	}
	if prevEnd != res.TotalCycles {
		return fmt.Errorf("oracle: last phase ends at %d, TotalCycles is %d", prevEnd, res.TotalCycles)
	}

	// Cycle identity and bounds.
	if res.StallCycles < 0 {
		return fmt.Errorf("oracle: negative stall cycles %d", res.StallCycles)
	}
	if best := BestCaseCycles(tr, is); res.TotalCycles != best+res.StallCycles {
		return fmt.Errorf("oracle: TotalCycles %d != best case %d + stalls %d", res.TotalCycles, best, res.StallCycles)
	}
	if sw := tr.SoftwareCycles(is); res.TotalCycles > sw {
		return fmt.Errorf("oracle: TotalCycles %d exceeds the pure-software bound %d", res.TotalCycles, sw)
	}
	if res.Runtime == "software" {
		if hw := res.TotalHWExecutions(); hw != 0 {
			return fmt.Errorf("oracle: software runtime reports %d hardware executions", hw)
		}
		if sw := tr.SoftwareCycles(is); res.TotalCycles != sw {
			return fmt.Errorf("oracle: software runtime took %d cycles, closed form says %d", res.TotalCycles, sw)
		}
	}

	// Timeline sanity.
	if res.Timeline != nil {
		lastCycle := int64(0)
		lastLat := make(map[int]int)
		for i, e := range res.Timeline.Events {
			if e.Cycle < lastCycle {
				return fmt.Errorf("oracle: timeline event %d at cycle %d after cycle %d", i, e.Cycle, lastCycle)
			}
			lastCycle = e.Cycle
			s := is.SI(isa.SIID(e.SI))
			if e.Latency < s.Fastest().Latency || e.Latency > s.SWLatency {
				return fmt.Errorf("oracle: timeline event %d: SI %d latency %d outside [%d, %d]",
					i, e.SI, e.Latency, s.Fastest().Latency, s.SWLatency)
			}
			if prev, ok := lastLat[e.SI]; ok && prev == e.Latency {
				return fmt.Errorf("oracle: timeline event %d: SI %d repeats latency %d", i, e.SI, e.Latency)
			}
			lastLat[e.SI] = e.Latency
		}
	}

	// Histogram conservation.
	if res.Histogram != nil {
		for _, si := range res.Histogram.SIs() {
			if got, want := res.Histogram.Total(si), gotExecs[isa.SIID(si)]; got != want {
				return fmt.Errorf("oracle: histogram holds %d executions of SI %d, result has %d", got, si, want)
			}
		}
	}
	return nil
}
