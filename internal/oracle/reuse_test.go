// Reuse-equivalence gate: a runtime that has already executed a workload
// and is then rerun (the simulator Resets it in place — the contract the
// rispp.Runner runtime pool is built on) must produce results field-exact
// identical to a freshly constructed runtime, including the JSONL journal
// byte for byte. Likewise the batched single-pass walk (sim.RunCompiledSet)
// must match sequential fresh runs. Both properties are checked over the
// oracle's seeded generators: hundreds of (hardware, workload, AC-count)
// configurations across all six run-time systems.
package oracle_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"rispp"
	"rispp/internal/isa"
	"rispp/internal/oracle"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

const reuseSeeds = 100 // × len(oracle.Systems) = 600 triples

func newRuntime(t *testing.T, sys string, is *isa.ISA, acs int, tr *workload.Trace) sim.Runtime {
	t.Helper()
	rt, err := rispp.NewRuntime(rispp.Config{ISA: is, Workload: tr, Scheduler: sys, NumACs: acs, SeedForecasts: true})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestReuseEquivalenceGeneratedCorpus runs each generated configuration on
// a fresh runtime and on a runtime already dirtied by a previous full run,
// and requires every measurement artifact — cycles, stalls, per-SI splits,
// phases, timelines, histograms, journal bytes — to be identical.
func TestReuseEquivalenceGeneratedCorpus(t *testing.T) {
	opts := sim.Options{HistogramBucket: 50_000, Timeline: true}
	for seed := int64(0); seed < reuseSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		is := oracle.GenHardware(r)
		tr := oracle.GenWorkload(r, is)
		acs := oracle.GenNumACs(r)
		ct, err := workload.Compile(tr, is)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range oracle.Systems {
			freshOpts, reusedOpts := opts, opts
			var freshJournal, reusedJournal bytes.Buffer
			freshOpts.Journal = &freshJournal
			reusedOpts.Journal = &reusedJournal

			fresh := newRuntime(t, sys, is, acs, tr)
			var want sim.Result
			if err := sim.RunCompiled(context.Background(), ct, fresh, freshOpts, &want); err != nil {
				t.Fatal(err)
			}

			reused := newRuntime(t, sys, is, acs, tr)
			var scratch sim.Result
			// Dirty the runtime with a full artifact-free run, then rerun
			// with the real options — the pool's reuse pattern.
			if err := sim.RunCompiled(context.Background(), ct, reused, sim.Options{}, &scratch); err != nil {
				t.Fatal(err)
			}
			var got sim.Result
			if err := sim.RunCompiled(context.Background(), ct, reused, reusedOpts, &got); err != nil {
				t.Fatal(err)
			}

			if err := oracle.DiffResults(&want, &got); err != nil {
				t.Errorf("seed %d, system %s, %d ACs: %v", seed, sys, acs, err)
			}
			if !bytes.Equal(freshJournal.Bytes(), reusedJournal.Bytes()) {
				t.Errorf("seed %d, system %s, %d ACs: journal bytes differ between fresh and reused runtime",
					seed, sys, acs)
			}
		}
	}
}

// TestRunCompiledSetEquivalenceGeneratedCorpus checks the single-pass
// multi-system walk on the generated corpus: batching all six systems over
// one shared compiled trace — on runtimes dirtied by prior sequential runs
// — must reproduce the sequential fresh-run results exactly.
func TestRunCompiledSetEquivalenceGeneratedCorpus(t *testing.T) {
	opts := sim.Options{HistogramBucket: 50_000, Timeline: true}
	for seed := int64(0); seed < reuseSeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		is := oracle.GenHardware(r)
		tr := oracle.GenWorkload(r, is)
		acs := oracle.GenNumACs(r)
		ct, err := workload.Compile(tr, is)
		if err != nil {
			t.Fatal(err)
		}
		rts := make([]sim.Runtime, len(oracle.Systems))
		want := make([]*sim.Result, len(oracle.Systems))
		got := make([]*sim.Result, len(oracle.Systems))
		for i, sys := range oracle.Systems {
			rts[i] = newRuntime(t, sys, is, acs, tr)
			want[i], got[i] = new(sim.Result), new(sim.Result)
			if err := sim.RunCompiled(context.Background(), ct, rts[i], opts, want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.RunCompiledSet(context.Background(), ct, rts, opts, got); err != nil {
			t.Fatal(err)
		}
		for i, sys := range oracle.Systems {
			if err := oracle.DiffResults(want[i], got[i]); err != nil {
				t.Errorf("seed %d, system %s, %d ACs: %v", seed, sys, acs, err)
			}
		}
	}
}
