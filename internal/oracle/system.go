package oracle

import (
	"fmt"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/molen"
	"rispp/internal/sched"
	"rispp/internal/workload"
)

// Systems lists the six run-time systems of the paper's evaluation: the
// four RISPP SI schedulers, the Molen-like baseline and the plain base
// processor.
var Systems = []string{"FSFR", "ASF", "SJF", "HEF", "Molen", "software"}

// NewSystem builds a fresh run-time system for one of Systems with the
// paper-default calibration (default reconfiguration timing, LRU eviction,
// greedy Molecule selection) and the design-time forecast seeding of the
// toolchain (SeedFromTrace) — the same construction rispp.NewRuntime
// performs for a Config with SeedForecasts set. Each call returns an
// independent instance, so the oracle and the simulator can drive twins of
// the same system through the same trace.
func NewSystem(name string, is *isa.ISA, numACs int, tr *workload.Trace) (Runtime, error) {
	switch name {
	case "software":
		return Software(is), nil
	case "Molen", "molen":
		rt := molen.New(molen.Config{ISA: is, NumACs: numACs})
		rt.SeedFromTrace(tr)
		return rt, nil
	default:
		s, err := sched.New(name)
		if err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
		m := core.NewManager(core.Config{ISA: is, NumACs: numACs, Scheduler: s})
		m.SeedFromTrace(tr)
		return m, nil
	}
}
