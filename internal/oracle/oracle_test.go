package oracle_test

import (
	"math/rand"
	"strings"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/oracle"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// TestGeneratorsProduceValidInputs pins the generator contract the whole
// corpus relies on: every seed yields a structurally valid ISA, a trace that
// validates against it, and an AC budget in the documented range.
func TestGeneratorsProduceValidInputs(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		is := oracle.GenHardware(r)
		if err := is.Validate(); err != nil {
			t.Fatalf("seed %d: invalid ISA: %v", seed, err)
		}
		tr := oracle.GenWorkload(r, is)
		if err := tr.Validate(is); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
		if acs := oracle.GenNumACs(r); acs < 0 || acs > 12 {
			t.Fatalf("seed %d: NumACs %d outside [0, 12]", seed, acs)
		}
	}
}

// TestGeneratorsAreDeterministic: same seed, same draw stream — the property
// that makes every corpus failure reproducible by seed alone.
func TestGeneratorsAreDeterministic(t *testing.T) {
	gen := func() (*isa.ISA, *workload.Trace, int) {
		r := rand.New(rand.NewSource(42))
		is := oracle.GenHardware(r)
		return is, oracle.GenWorkload(r, is), oracle.GenNumACs(r)
	}
	is1, tr1, acs1 := gen()
	is2, tr2, acs2 := gen()
	if is1.Dim() != is2.Dim() || len(is1.SIs) != len(is2.SIs) || acs1 != acs2 || len(tr1.Phases) != len(tr2.Phases) {
		t.Fatal("same seed generated different configurations")
	}
	a := runSimFromParts(t, is1, tr1, acs1)
	b := runSimFromParts(t, is2, tr2, acs2)
	if a != b {
		t.Fatalf("same seed simulated to different cycle counts: %d vs %d", a, b)
	}
}

func runSimFromParts(t *testing.T, is *isa.ISA, tr *workload.Trace, acs int) int64 {
	t.Helper()
	return runSim(t, "HEF", is, acs, tr, sim.Options{}).TotalCycles
}

// TestOracleSoftwareMatchesClosedForm: the interpreter on the pure-software
// model reproduces workload.SoftwareCycles exactly.
func TestOracleSoftwareMatchesClosedForm(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		is := oracle.GenHardware(r)
		tr := oracle.GenWorkload(r, is)
		res, err := oracle.Run(tr, is, oracle.Software(is), oracle.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := tr.SoftwareCycles(is); res.TotalCycles != want {
			t.Fatalf("seed %d: oracle software run took %d cycles, closed form says %d", seed, res.TotalCycles, want)
		}
	}
}

// twoSIISA builds a minimal valid ISA that corrupt can then damage.
func twoSIISA(corrupt func(*isa.ISA)) *isa.ISA {
	is := &isa.ISA{
		Name: "tiny",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A", BitstreamBytes: 4_000, Slices: 1, LUTs: 1, FFs: 1},
			{ID: 1, Name: "B", BitstreamBytes: 4_000, Slices: 1, LUTs: 1, FFs: 1},
		},
		SIs: []isa.SI{
			{ID: 0, Name: "S0", HotSpot: 0, SWLatency: 50,
				Molecules: []isa.Molecule{{SI: 0, Atoms: molecule.Of(1, 0), Latency: 5}}},
			{ID: 1, Name: "S1", HotSpot: 0, SWLatency: 50,
				Molecules: []isa.Molecule{{SI: 1, Atoms: molecule.Of(0, 1), Latency: 5}}},
		},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "H0", SIs: []isa.SIID{0, 1}}},
	}
	if corrupt != nil {
		corrupt(is)
	}
	return is
}

// TestRunRejectsInvalidInputs: malformed hardware or traces must yield
// errors from the interpreter, never panics or silent nonsense.
func TestRunRejectsInvalidInputs(t *testing.T) {
	goodTrace := &workload.Trace{Phases: []workload.Phase{
		{HotSpot: 0, Bursts: []workload.Burst{{SI: 0, Count: 1}}},
	}}
	cases := []struct {
		name string
		is   *isa.ISA
		tr   *workload.Trace
		want string
	}{
		{"unknown SI in trace", twoSIISA(nil),
			&workload.Trace{Phases: []workload.Phase{{HotSpot: 0, Bursts: []workload.Burst{{SI: 9, Count: 1}}}}},
			"SI"},
		{"negative burst count", twoSIISA(nil),
			&workload.Trace{Phases: []workload.Phase{{HotSpot: 0, Bursts: []workload.Burst{{SI: 0, Count: -1}}}}},
			"count"},
		{"SI with no hardware Molecule", twoSIISA(func(is *isa.ISA) { is.SIs[1].Molecules = nil }),
			goodTrace, "no hardware Molecule"},
		{"misnumbered SI ids", twoSIISA(func(is *isa.ISA) { is.SIs[1].ID = 0 }),
			goodTrace, "misnumbered"},
	}
	for _, c := range cases {
		_, err := oracle.Run(c.tr, c.is, oracle.Software(c.is), oracle.Options{})
		if err == nil {
			t.Errorf("%s: no error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestDiffDetectsEveryField corrupts each field of an agreeing oracle
// Result in turn; Diff must flag all of them.
func TestDiffDetectsEveryField(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	is := oracle.GenHardware(r)
	tr := oracle.GenWorkload(r, is)
	acs := oracle.GenNumACs(r)
	fresh := func() *oracle.Result {
		ort, err := oracle.NewSystem("HEF", is, acs, tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 50_000, Timeline: true})
		if err != nil {
			t.Fatal(err)
		}
		return want
	}
	got := runSim(t, "HEF", is, acs, tr, sim.Options{HistogramBucket: 50_000, Timeline: true})
	if err := oracle.Diff(fresh(), got); err != nil {
		t.Fatal(err)
	}
	someSI := isa.SIID(-1)
	for si := range fresh().Executions {
		someSI = si
		break
	}
	corruptions := map[string]func(*oracle.Result){
		"runtime name": func(w *oracle.Result) { w.Runtime = "other" },
		"total cycles": func(w *oracle.Result) { w.TotalCycles++ },
		"stall cycles": func(w *oracle.Result) { w.StallCycles++ },
		"executions":   func(w *oracle.Result) { w.Executions[someSI]++ },
		"sw/hw split": func(w *oracle.Result) {
			w.SWExecutions[someSI]++
			w.HWExecutions[someSI]--
		},
		"phase boundary": func(w *oracle.Result) { w.Phases[0].End++ },
		"timeline":       func(w *oracle.Result) { w.Timeline[0].Latency++ },
		"histogram":      func(w *oracle.Result) { w.Histogram[int(someSI)][0]++ },
	}
	for name, corrupt := range corruptions {
		want := fresh()
		corrupt(want)
		if err := oracle.Diff(want, got); err == nil {
			t.Errorf("corruption %q not detected by Diff", name)
		}
	}
}
