package oracle

import (
	"fmt"
	"io"

	"rispp/internal/isa"
	"rispp/internal/sim"
)

// Diff cross-checks a sim.Result against the oracle's reference Result
// field by field: cycle counts, per-SI execution splits, phase boundaries,
// latency timelines and histograms (artifacts are compared only when the
// oracle collected them). It returns nil when the results agree, or an
// error naming the first divergence.
func Diff(want *Result, got *sim.Result) error {
	if got.Runtime != want.Runtime {
		return fmt.Errorf("oracle: runtime %q, sim has %q", want.Runtime, got.Runtime)
	}
	if got.TotalCycles != want.TotalCycles {
		return fmt.Errorf("oracle: TotalCycles %d, sim has %d", want.TotalCycles, got.TotalCycles)
	}
	if got.StallCycles != want.StallCycles {
		return fmt.Errorf("oracle: StallCycles %d, sim has %d", want.StallCycles, got.StallCycles)
	}
	if err := diffCounts("Executions", want.Executions, got.Executions()); err != nil {
		return err
	}
	if err := diffCounts("SWExecutions", want.SWExecutions, got.SWExecutions()); err != nil {
		return err
	}
	if err := diffCounts("HWExecutions", want.HWExecutions, got.HWExecutions()); err != nil {
		return err
	}
	if len(got.Phases) != len(want.Phases) {
		return fmt.Errorf("oracle: %d phases, sim has %d", len(want.Phases), len(got.Phases))
	}
	for i, w := range want.Phases {
		g := got.Phases[i]
		if g.HotSpot != w.HotSpot || g.Start != w.Start || g.End != w.End {
			return fmt.Errorf("oracle: phase %d {hotspot %d, %d..%d}, sim has {hotspot %d, %d..%d}",
				i, w.HotSpot, w.Start, w.End, g.HotSpot, g.Start, g.End)
		}
	}
	if want.Timeline != nil || got.Timeline != nil {
		var events []LatencyStep
		if got.Timeline != nil {
			for _, e := range got.Timeline.Events {
				events = append(events, LatencyStep{Cycle: e.Cycle, SI: e.SI, Latency: e.Latency})
			}
		}
		if len(events) != len(want.Timeline) {
			return fmt.Errorf("oracle: %d timeline events, sim has %d", len(want.Timeline), len(events))
		}
		for i, w := range want.Timeline {
			if events[i] != w {
				return fmt.Errorf("oracle: timeline event %d is %+v, sim has %+v", i, w, events[i])
			}
		}
	}
	if want.Histogram != nil {
		sis := map[int]bool{}
		for si := range want.Histogram {
			sis[si] = true
		}
		if got.Histogram == nil {
			if len(sis) > 0 {
				return fmt.Errorf("oracle: histogram collected, sim has none")
			}
		} else {
			for _, si := range got.Histogram.SIs() {
				sis[si] = true
			}
			for si := range sis {
				w := trimZeros(want.Histogram[si])
				g := trimZeros(got.Histogram.Counts(si))
				if len(w) != len(g) {
					return fmt.Errorf("oracle: SI %d histogram spans %d buckets, sim has %d", si, len(w), len(g))
				}
				for b := range w {
					if w[b] != g[b] {
						return fmt.Errorf("oracle: SI %d histogram bucket %d is %d, sim has %d", si, b, w[b], g[b])
					}
				}
			}
		}
	}
	return nil
}

func trimZeros(row []int64) []int64 {
	for len(row) > 0 && row[len(row)-1] == 0 {
		row = row[:len(row)-1]
	}
	return row
}

func diffCounts(what string, want map[isa.SIID]int64, got map[isa.SIID]int64) error {
	for si, w := range want {
		if g := got[si]; g != w {
			return fmt.Errorf("oracle: %s[%d] = %d, sim has %d", what, si, w, g)
		}
	}
	for si, g := range got {
		if want[si] != g {
			return fmt.Errorf("oracle: %s[%d] = %d, sim has %d", what, si, want[si], g)
		}
	}
	return nil
}

// DiffJournal cross-checks the simulator's JSONL journal stream against the
// oracle's in-memory event list: same events, same order, same cycles.
func DiffJournal(want []Event, gotJournal io.Reader) error {
	events, err := sim.ReadJournal(gotJournal)
	if err != nil {
		return fmt.Errorf("oracle: sim journal does not parse: %w", err)
	}
	if len(events) != len(want) {
		return fmt.Errorf("oracle: %d journal events, sim has %d", len(want), len(events))
	}
	for i, w := range want {
		g := Event{Cycle: events[i].Cycle, Event: events[i].Event, HotSpot: events[i].HotSpot,
			SI: events[i].SI, Latency: events[i].Latency}
		if g != w {
			return fmt.Errorf("oracle: journal event %d is %+v, sim has %+v", i, w, g)
		}
	}
	return nil
}

// DiffResults cross-checks two simulator Results field by field — the
// sim-vs-sim counterpart of Diff, used to prove runtime reuse (Reset +
// rerun, pooled runtimes, batched RunCompiledSet walks) behaviorally
// invisible: a reused runtime's Result must match a fresh construction's
// exactly. It returns nil when the results agree, or an error naming the
// first divergence.
func DiffResults(want, got *sim.Result) error {
	if want.Runtime != got.Runtime {
		return fmt.Errorf("oracle: runtime %q, reused run has %q", want.Runtime, got.Runtime)
	}
	if want.TotalCycles != got.TotalCycles {
		return fmt.Errorf("oracle: TotalCycles %d, reused run has %d", want.TotalCycles, got.TotalCycles)
	}
	if want.StallCycles != got.StallCycles {
		return fmt.Errorf("oracle: StallCycles %d, reused run has %d", want.StallCycles, got.StallCycles)
	}
	if err := diffCounts("Executions", want.Executions(), got.Executions()); err != nil {
		return err
	}
	if err := diffCounts("SWExecutions", want.SWExecutions(), got.SWExecutions()); err != nil {
		return err
	}
	if err := diffCounts("HWExecutions", want.HWExecutions(), got.HWExecutions()); err != nil {
		return err
	}
	if len(want.Phases) != len(got.Phases) {
		return fmt.Errorf("oracle: %d phases, reused run has %d", len(want.Phases), len(got.Phases))
	}
	for i, w := range want.Phases {
		if g := got.Phases[i]; g != w {
			return fmt.Errorf("oracle: phase %d is %+v, reused run has %+v", i, w, g)
		}
	}
	if (want.Timeline == nil) != (got.Timeline == nil) {
		return fmt.Errorf("oracle: timeline presence differs (%t vs %t)", want.Timeline != nil, got.Timeline != nil)
	}
	if want.Timeline != nil {
		if len(want.Timeline.Events) != len(got.Timeline.Events) {
			return fmt.Errorf("oracle: %d timeline events, reused run has %d",
				len(want.Timeline.Events), len(got.Timeline.Events))
		}
		for i, w := range want.Timeline.Events {
			if g := got.Timeline.Events[i]; g != w {
				return fmt.Errorf("oracle: timeline event %d is %+v, reused run has %+v", i, w, g)
			}
		}
	}
	if (want.Histogram == nil) != (got.Histogram == nil) {
		return fmt.Errorf("oracle: histogram presence differs (%t vs %t)", want.Histogram != nil, got.Histogram != nil)
	}
	if want.Histogram != nil {
		sis := map[int]bool{}
		for _, si := range want.Histogram.SIs() {
			sis[si] = true
		}
		for _, si := range got.Histogram.SIs() {
			sis[si] = true
		}
		for si := range sis {
			w := trimZeros(want.Histogram.Counts(si))
			g := trimZeros(got.Histogram.Counts(si))
			if len(w) != len(g) {
				return fmt.Errorf("oracle: SI %d histogram spans %d buckets, reused run has %d", si, len(w), len(g))
			}
			for b := range w {
				if w[b] != g[b] {
					return fmt.Errorf("oracle: SI %d histogram bucket %d is %d, reused run has %d", si, b, w[b], g[b])
				}
			}
		}
	}
	return nil
}
