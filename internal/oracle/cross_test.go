package oracle_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"rispp"
	"rispp/internal/isa"
	"rispp/internal/oracle"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// runSim runs the optimized simulator on the same configuration the oracle
// interprets: the rispp.NewRuntime construction with design-time forecast
// seeding, mirroring oracle.NewSystem.
func runSim(t *testing.T, name string, is *isa.ISA, acs int, tr *workload.Trace, opts sim.Options) *sim.Result {
	t.Helper()
	rt, err := rispp.NewRuntime(rispp.Config{ISA: is, Workload: tr, Scheduler: name, NumACs: acs, SeedForecasts: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, is, rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// diverges reports whether the oracle and the simulator disagree (or either
// crashes) on one (hardware, trace, system, ACs) configuration — the
// predicate ShrinkTrace minimizes over.
func diverges(is *isa.ISA, tr *workload.Trace, sys string, acs int) (failed bool) {
	defer func() {
		if recover() != nil {
			failed = true
		}
	}()
	ort, err := oracle.NewSystem(sys, is, acs, tr)
	if err != nil {
		return true
	}
	want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 50_000, Timeline: true})
	if err != nil {
		return true
	}
	rt, err := rispp.NewRuntime(rispp.Config{ISA: is, Workload: tr, Scheduler: sys, NumACs: acs, SeedForecasts: true})
	if err != nil {
		return true
	}
	got, err := sim.Run(tr, is, rt, sim.Options{HistogramBucket: 50_000, Timeline: true})
	if err != nil {
		return true
	}
	return oracle.Diff(want, got) != nil || oracle.Check(tr, is, got) != nil
}

// reportShrunk minimizes a diverging trace and logs the reproducer, so a CI
// failure carries the smallest input that still exhibits it.
func reportShrunk(t *testing.T, is *isa.ISA, tr *workload.Trace, sys string, acs int) {
	t.Helper()
	small := oracle.ShrinkTrace(tr, func(c *workload.Trace) bool { return diverges(is, c, sys, acs) })
	js, _ := json.Marshal(small)
	t.Logf("minimal reproducer (system %s, %d ACs, ISA %q): %s", sys, acs, is.Name, js)
}

// TestCrossCheckGeneratedCorpus is the acceptance gate of the oracle: 250
// seeded (hardware, workload, AC-count) configurations, each run through all
// six run-time systems — 1,500 triples — comparing the naive per-execution
// interpreter against the compiled hot path field by field (cycles, stalls,
// per-SI SW/HW splits, phases, latency timelines, histograms and the JSONL
// journal), and validating every simulator result against the paper
// invariants. A divergence fails the test with a shrunk minimal reproducer.
func TestCrossCheckGeneratedCorpus(t *testing.T) {
	failures := 0
	for seed := int64(0); seed < 250; seed++ {
		r := rand.New(rand.NewSource(seed))
		is := oracle.GenHardware(r)
		tr := oracle.GenWorkload(r, is)
		acs := oracle.GenNumACs(r)
		for _, sys := range oracle.Systems {
			ort, err := oracle.NewSystem(sys, is, acs, tr)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 50_000, Timeline: true, Journal: true})
			if err != nil {
				t.Fatal(err)
			}
			var journal bytes.Buffer
			got := runSim(t, sys, is, acs, tr, sim.Options{HistogramBucket: 50_000, Timeline: true, Journal: &journal})

			err = oracle.Diff(want, got)
			if err == nil {
				err = oracle.DiffJournal(want.Journal, &journal)
			}
			if err == nil {
				err = oracle.Check(tr, is, got)
			}
			if err != nil {
				t.Errorf("seed %d, system %s, %d ACs: %v", seed, sys, acs, err)
				reportShrunk(t, is, tr, sys, acs)
				if failures++; failures >= 5 {
					t.Fatal("stopping after 5 divergences")
				}
			}
		}
	}
}

// TestCrossCheckH264 cross-checks the oracle against the simulator on the
// paper's calibrated H.264 encoder workload for all six run-time systems,
// with every measurement artifact enabled. Short mode runs a 4-frame
// excerpt; the full 140-frame trace (7.4M SI executions) runs otherwise.
func TestCrossCheckH264(t *testing.T) {
	cfg := workload.H264Config{}
	if testing.Short() {
		cfg.Frames = 4
	}
	is := isa.H264()
	tr := workload.H264(cfg)
	for _, sys := range oracle.Systems {
		ort, err := oracle.NewSystem(sys, is, 10, tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 100_000, Timeline: true, Journal: true})
		if err != nil {
			t.Fatal(err)
		}
		var journal bytes.Buffer
		got := runSim(t, sys, is, 10, tr, sim.Options{HistogramBucket: 100_000, Timeline: true, Journal: &journal})
		if err := oracle.Diff(want, got); err != nil {
			t.Errorf("system %s: %v", sys, err)
		}
		if err := oracle.DiffJournal(want.Journal, &journal); err != nil {
			t.Errorf("system %s: %v", sys, err)
		}
		if err := oracle.Check(tr, is, got); err != nil {
			t.Errorf("system %s: %v", sys, err)
		}
	}
}
