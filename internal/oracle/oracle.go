// Package oracle is the independent correctness oracle of the RISPP
// evaluation platform: a deliberately naive re-implementation of the
// run-time-system semantics written from DESIGN.md and the paper, against
// which the aggressively optimized hot path of internal/sim (compiled
// traces, dense accounting, pooled results) is cross-checked on arbitrary
// inputs.
//
// The package has three legs:
//
//   - Run, a per-event, per-execution, map-based reference interpreter. It
//     shares no code with the simulator's hot path: bursts are not chunked
//     in closed form, accounting lives in maps, journal events and latency
//     timelines are collected into plain slices. Diff compares its Result
//     against a sim.Result field by field.
//   - Check, a paper-invariant checker that validates any sim.Result
//     against structural properties that must hold regardless of scheduler
//     or workload (execution conservation, phase contiguity, the
//     cycles = best-case + stall identity, the pure-software upper bound,
//     timeline monotonicity).
//   - GenHardware / GenWorkload, a seeded deterministic generator of random
//     dynamic instruction sets and traces (with ShrinkTrace to minimize a
//     failing input), driving property, metamorphic and fuzz tests over all
//     six run-time systems.
//
// The oracle trades every optimization for obviousness — it is the
// executable specification the fast path must agree with, and the standing
// correctness gate future performance work must pass (make verify-oracle).
package oracle

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/workload"
)

// Runtime is the run-time system under test. It is a structural twin of
// sim.Runtime — deliberately re-declared here so the oracle depends only on
// the documented contract, not on the simulator package; any sim.Runtime
// (core.Manager, molen.Runtime, the software model) satisfies it as is.
type Runtime interface {
	Name() string
	Reset()
	EnterHotSpot(h isa.HotSpotID, now int64)
	LeaveHotSpot(now int64)
	Latency(si isa.SIID) int
	Record(si isa.SIID, n int64, now int64)
	NextEvent() (at int64, ok bool)
	Advance(t int64)
}

// Options selects the measurement artifacts the oracle collects. They
// mirror sim.Options so a cross-check can compare every artifact.
type Options struct {
	// HistogramBucket, when > 0, collects per-SI execution histograms with
	// this bucket width in cycles.
	HistogramBucket int64
	// Timeline records SI latency steps.
	Timeline bool
	// Journal records the event journal (enter/leave/load/latency) in
	// memory; Diff compares it against the simulator's JSONL bytes.
	Journal bool
}

// Event is one journal event, mirroring sim.JournalEvent field by field.
type Event struct {
	Cycle   int64
	Event   string // "enter", "leave", "load", "latency"
	HotSpot int
	SI      int
	Latency int
}

// LatencyStep is one SI latency change, mirroring stats.LatencyEvent.
type LatencyStep struct {
	Cycle   int64
	SI      int
	Latency int
}

// PhaseStat records the boundaries of one executed hot-spot phase.
type PhaseStat struct {
	HotSpot isa.HotSpotID
	Start   int64
	End     int64
}

// Result is the oracle's map-based account of one run.
type Result struct {
	Runtime     string
	TotalCycles int64
	StallCycles int64

	Executions   map[isa.SIID]int64
	SWExecutions map[isa.SIID]int64
	HWExecutions map[isa.SIID]int64

	Phases []PhaseStat

	// Histogram maps SI → per-bucket execution counts (start-time bucketed)
	// when Options.HistogramBucket > 0.
	Histogram map[int][]int64
	// Timeline holds the deduplicated latency steps when Options.Timeline.
	Timeline []LatencyStep
	// Journal holds the event journal when Options.Journal.
	Journal []Event
}

// Run interprets the trace on the runtime one SI execution at a time.
//
// Semantics, from the paper's execution model (DESIGN.md §1, §3): the
// processor enters a hot spot (the runtime forecasts, selects and schedules
// Atom loads there), spends the phase's setup cycles, then executes each
// burst's SI executions back to back, every execution at the latency of the
// fastest currently available Molecule (or the trap), each followed by the
// burst's glue-cycle gap. Reconfiguration proceeds concurrently: an Atom
// load completing at cycle t upgrades the latency of every execution that
// starts at or after t. Stall cycles account each execution's distance from
// the SI's fastest Molecule.
func Run(tr *workload.Trace, is *isa.ISA, rt Runtime, opts Options) (*Result, error) {
	if err := tr.Validate(is); err != nil {
		return nil, err
	}
	for i := range is.SIs {
		s := &is.SIs[i]
		if s.ID != isa.SIID(i) {
			return nil, fmt.Errorf("oracle: SI %q has id %d at index %d (duplicate or misnumbered ids)", s.Name, s.ID, i)
		}
		if len(s.Molecules) == 0 {
			return nil, fmt.Errorf("oracle: SI %q has no hardware Molecule", s.Name)
		}
	}

	rt.Reset()
	res := &Result{
		Runtime:      rt.Name(),
		Executions:   make(map[isa.SIID]int64),
		SWExecutions: make(map[isa.SIID]int64),
		HWExecutions: make(map[isa.SIID]int64),
	}
	if opts.HistogramBucket > 0 {
		res.Histogram = make(map[int][]int64)
	}

	now := int64(0)
	lastLat := make(map[isa.SIID]int)

	emit := func(e Event) {
		if opts.Journal {
			res.Journal = append(res.Journal, e)
		}
	}
	timeline := func(at int64, si, lat int) {
		// Matches stats.Timeline.Record: drop an event whose latency equals
		// the SI's most recent recorded latency.
		for i := len(res.Timeline) - 1; i >= 0; i-- {
			if res.Timeline[i].SI == si {
				if res.Timeline[i].Latency == lat {
					return
				}
				break
			}
		}
		res.Timeline = append(res.Timeline, LatencyStep{Cycle: at, SI: si, Latency: lat})
	}
	// pollLatencies observes the current latency of every SI of the hot
	// spot — the timeline step and the journal's latency-change events.
	pollLatencies := func(at int64, spot []*isa.SI) {
		for _, s := range spot {
			lat := rt.Latency(s.ID)
			if opts.Timeline {
				timeline(at, int(s.ID), lat)
			}
			if opts.Journal && lastLat[s.ID] != lat {
				lastLat[s.ID] = lat
				emit(Event{Cycle: at, Event: "latency", SI: int(s.ID), Latency: lat})
			}
		}
	}
	// drain processes every pending Atom-load completion up to time limit.
	drain := func(limit int64, spot []*isa.SI) {
		for {
			at, ok := rt.NextEvent()
			if !ok || at > limit {
				return
			}
			rt.Advance(at)
			emit(Event{Cycle: at, Event: "load"})
			pollLatencies(at, spot)
		}
	}

	for pi := range tr.Phases {
		p := &tr.Phases[pi]
		spot := is.HotSpotSIs(p.HotSpot)
		start := now
		rt.EnterHotSpot(p.HotSpot, now)
		emit(Event{Cycle: now, Event: "enter", HotSpot: int(p.HotSpot)})
		pollLatencies(now, spot)
		now += p.Setup
		drain(now, spot)

		for _, b := range p.Bursts {
			s := is.SI(b.SI)
			for k := 0; k < b.Count; k++ {
				// Loads completing strictly before this execution starts
				// take effect first; one completing exactly now does too.
				drain(now, spot)
				lat := rt.Latency(b.SI)
				if res.Histogram != nil {
					bucket := int(now / opts.HistogramBucket)
					row := res.Histogram[int(b.SI)]
					for len(row) <= bucket {
						row = append(row, 0)
					}
					row[bucket]++
					res.Histogram[int(b.SI)] = row
				}
				res.Executions[b.SI]++
				if lat >= s.SWLatency {
					res.SWExecutions[b.SI]++
				} else {
					res.HWExecutions[b.SI]++
				}
				res.StallCycles += int64(lat - s.Fastest().Latency)
				now += int64(lat) + int64(b.Gap)
				rt.Record(b.SI, 1, now)
			}
		}
		drain(now, spot)
		rt.LeaveHotSpot(now)
		emit(Event{Cycle: now, Event: "leave", HotSpot: int(p.HotSpot)})
		res.Phases = append(res.Phases, PhaseStat{HotSpot: p.HotSpot, Start: start, End: now})
	}
	res.TotalCycles = now
	return res, nil
}

// Software is the oracle's own model of the plain base processor: every SI
// always executes through its trap implementation.
func Software(is *isa.ISA) Runtime { return &swRuntime{is: is} }

type swRuntime struct{ is *isa.ISA }

func (r *swRuntime) Name() string                      { return "software" }
func (r *swRuntime) Reset()                            {}
func (r *swRuntime) EnterHotSpot(isa.HotSpotID, int64) {}
func (r *swRuntime) LeaveHotSpot(int64)                {}
func (r *swRuntime) Latency(si isa.SIID) int           { return r.is.SI(si).SWLatency }
func (r *swRuntime) Record(isa.SIID, int64, int64)     {}
func (r *swRuntime) NextEvent() (int64, bool)          { return 0, false }
func (r *swRuntime) Advance(int64)                     { panic("oracle: software runtime has no events") }
