package oracle_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rispp/internal/oracle"
	"rispp/internal/scenario"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// TestCrossCheckScenarioCorpus is the scenario-side acceptance gate: 90
// generated scenario specs (multi-app merged ISAs, branchy control flow,
// content-driven encodes), each expanded and run through all six run-time
// systems — 540 triples — comparing the reference interpreter against the
// compiled simulator field by field: cycles, stalls, per-SI SW/HW splits,
// phases, latency timelines, histograms and the byte-exact JSONL journal.
// Short mode runs a 15-spec excerpt (90 triples).
func TestCrossCheckScenarioCorpus(t *testing.T) {
	nSpecs := 90
	if testing.Short() {
		nSpecs = 15
	}
	failures := 0
	for seed := 0; seed < nSpecs; seed++ {
		r := rand.New(rand.NewSource(int64(7000 + seed)))
		spec := scenario.GenSpec(r)
		sc, err := scenario.New(spec)
		if err != nil {
			t.Fatalf("seed %d: GenSpec produced a rejected spec: %v", seed, err)
		}
		is := sc.ISA()
		frames := 2 + r.Intn(3)
		tr := sc.Trace(frames, int64(seed))
		if err := tr.Validate(is); err != nil {
			t.Fatalf("seed %d (%s): expansion invalid: %v", seed, spec.Name, err)
		}
		acs := oracle.GenNumACs(r)
		for _, sys := range oracle.Systems {
			ort, err := oracle.NewSystem(sys, is, acs, tr)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 50_000, Timeline: true, Journal: true})
			if err != nil {
				t.Fatal(err)
			}
			var journal bytes.Buffer
			got := runSim(t, sys, is, acs, tr, sim.Options{HistogramBucket: 50_000, Timeline: true, Journal: &journal})

			err = oracle.Diff(want, got)
			if err == nil {
				err = oracle.DiffJournal(want.Journal, &journal)
			}
			if err == nil {
				err = oracle.Check(tr, is, got)
			}
			if err != nil {
				t.Errorf("seed %d (%s, kind %s), system %s, %d ACs: %v",
					seed, spec.Name, spec.Kind, sys, acs, err)
				reportShrunk(t, is, tr, sys, acs)
				if failures++; failures >= 5 {
					t.Fatal("stopping after 5 divergences")
				}
			}
		}
	}
}

// TestCrossCheckNamedScenarios cross-checks every shipped library scenario
// end to end: the published expansions the serving and exploration layers
// hand out must match the reference interpreter field-exactly, with every
// measurement artifact enabled, on each run-time system.
func TestCrossCheckNamedScenarios(t *testing.T) {
	frames := 5
	if testing.Short() {
		frames = 2
	}
	for _, name := range scenario.Names() {
		sc, ok := scenario.Find(name)
		if !ok {
			t.Fatalf("library lists %q but Find fails", name)
		}
		is := sc.ISA()
		for _, seed := range []int64{0, 3} {
			tr := sc.Trace(frames, seed)
			if err := tr.Validate(is); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			for _, sys := range oracle.Systems {
				ort, err := oracle.NewSystem(sys, is, 8, tr)
				if err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 50_000, Timeline: true, Journal: true})
				if err != nil {
					t.Fatal(err)
				}
				var journal bytes.Buffer
				got := runSim(t, sys, is, 8, tr, sim.Options{HistogramBucket: 50_000, Timeline: true, Journal: &journal})

				err = oracle.Diff(want, got)
				if err == nil {
					err = oracle.DiffJournal(want.Journal, &journal)
				}
				if err == nil {
					err = oracle.Check(tr, is, got)
				}
				if err != nil {
					t.Errorf("%s seed %d, system %s: %v", name, seed, sys, err)
					reportShrunk(t, is, tr, sys, 8)
				}
			}
		}
	}
}

// TestGenSpecDeterministic: equal rng seeds generate equal specs (the
// corpus is reproducible), and expansion of a generated spec is stable.
func TestGenSpecDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := scenario.GenSpec(rand.New(rand.NewSource(seed)))
		b := scenario.GenSpec(rand.New(rand.NewSource(seed)))
		sa, err := scenario.New(a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := scenario.New(b)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Digest() != sb.Digest() {
			t.Fatalf("seed %d: GenSpec not deterministic", seed)
		}
		ta := sa.Trace(3, 1)
		tb := sb.Trace(3, 1)
		if ta.TotalExecutions() != tb.TotalExecutions() || len(ta.Phases) != len(tb.Phases) {
			t.Fatalf("seed %d: expansions diverge", seed)
		}
		var _ *workload.Trace = ta
	}
}
