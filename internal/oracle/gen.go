package oracle

import (
	"fmt"
	"math/rand"

	"rispp/internal/isa"
	"rispp/internal/workload"
)

// GenHardware derives a random — but always structurally valid — dynamic
// instruction set from the PRNG: 2..5 Atom types, 1..3 hot spots (each
// guaranteed at least one SI), and 1..7 SIs whose Molecule sets come from
// the same mixed-execution latency model as the paper's library
// (isa.MoleculeSpec), so ≤-monotonicity and hardware-beats-software hold by
// construction. The stream of draws is fixed for a given seed: the same
// rand.Rand state always yields the same ISA, which is what makes failures
// reproducible and shrinkable.
func GenHardware(r *rand.Rand) *isa.ISA {
	dim := 2 + r.Intn(4)
	atoms := make([]isa.AtomType, dim)
	for i := range atoms {
		atoms[i] = isa.AtomType{
			ID:             isa.AtomID(i),
			Name:           fmt.Sprintf("GA%d", i),
			BitstreamBytes: 4_000 + r.Intn(76_000),
			Slices:         50 + r.Intn(400),
			LUTs:           100 + r.Intn(800),
			FFs:            100 + r.Intn(800),
		}
	}

	nHot := 1 + r.Intn(3)
	nSIs := nHot + r.Intn(5)
	sis := make([]isa.SI, 0, nSIs)
	hotSIs := make([][]isa.SIID, nHot)
	for i := 0; i < nSIs; i++ {
		// The first nHot SIs cover every hot spot, so no hot spot is empty.
		hot := i
		if i >= nHot {
			hot = r.Intn(nHot)
		}
		k := 1 + r.Intn(min(3, dim))
		local := r.Perm(dim)[:k]
		spec := isa.MoleculeSpec{
			Atoms:    make([]isa.AtomID, k),
			Occ:      make([]int, k),
			HWCyc:    make([]int, k),
			SWCyc:    make([]int, k),
			Steps:    make([][]int, k),
			Overhead: r.Intn(16),
		}
		gridSize := 1
		for j := 0; j < k; j++ {
			spec.Atoms[j] = isa.AtomID(local[j])
			spec.Occ[j] = 1 + r.Intn(8)
			spec.HWCyc[j] = 1 + r.Intn(6)
			spec.SWCyc[j] = spec.HWCyc[j] + 1 + r.Intn(24)
			steps := []int{0, 1}
			if r.Intn(2) == 0 {
				steps = append(steps, 2+r.Intn(2))
			}
			spec.Steps[j] = steps
			gridSize *= len(steps)
		}
		spec.Count = 1 + r.Intn(min(gridSize-1, 5)) // grid minus the zero vector
		id := isa.SIID(len(sis))
		sis = append(sis, isa.SI{
			ID:        id,
			Name:      fmt.Sprintf("GSI%d", id),
			HotSpot:   isa.HotSpotID(hot),
			SWLatency: spec.SWLatency(),
			Molecules: spec.Generate(id, dim),
		})
		hotSIs[hot] = append(hotSIs[hot], id)
	}

	hs := make([]isa.HotSpot, nHot)
	for h := range hs {
		hs[h] = isa.HotSpot{ID: isa.HotSpotID(h), Name: fmt.Sprintf("GHS%d", h), SIs: hotSIs[h]}
	}
	is := &isa.ISA{Name: "generated", Atoms: atoms, SIs: sis, HotSpots: hs}
	if err := is.Validate(); err != nil {
		panic(fmt.Sprintf("oracle: generated an invalid ISA: %v", err))
	}
	return is
}

// GenWorkload derives a random trace valid for the ISA: 1..8 hot-spot
// phases with 0..5 SI bursts each (empty phases and zero-count bursts are
// deliberately reachable — they are exactly the edge cases a calibrated
// benchmark never produces).
func GenWorkload(r *rand.Rand, is *isa.ISA) *workload.Trace {
	tr := &workload.Trace{Name: "generated"}
	nPhases := 1 + r.Intn(8)
	for p := 0; p < nPhases; p++ {
		hot := r.Intn(len(is.HotSpots))
		phase := workload.Phase{
			HotSpot: isa.HotSpotID(hot),
			Setup:   int64(r.Intn(5_000)),
		}
		sis := is.HotSpots[hot].SIs
		for b := r.Intn(6); b > 0; b-- {
			phase.Bursts = append(phase.Bursts, workload.Burst{
				SI:    sis[r.Intn(len(sis))],
				Count: r.Intn(600),
				Gap:   r.Intn(12),
			})
		}
		tr.Phases = append(tr.Phases, phase)
	}
	return tr
}

// GenNumACs draws an Atom-Container budget, including the degenerate 0-AC
// fabric on which every system must degrade to pure software.
func GenNumACs(r *rand.Rand) int { return r.Intn(13) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
