package oracle_test

import (
	"math/rand"
	"testing"

	"rispp"
	"rispp/internal/oracle"
	"rispp/internal/sim"
)

// FuzzRunCompiled fuzzes the compiled hot path against the oracle: every
// input decodes to a seeded (hardware, workload, system, ACs) configuration,
// both engines run it, and any divergence from the reference interpreter or
// any violated paper invariant is a finding. The generated corpus already
// found one crash this way (a stale Atom load completing into a fully
// protected container array; see internal/core/stale_load_test.go).
func FuzzRunCompiled(f *testing.F) {
	f.Add(uint64(0), byte(0), byte(0))
	f.Add(uint64(23), byte(1), byte(2))  // ex-panic: stale load into protected array
	f.Add(uint64(59), byte(3), byte(4))  // ex-panic, HEF
	f.Add(uint64(130), byte(2), byte(5)) // ex-panic, ASF-only divergent seed
	f.Add(uint64(7), byte(0), byte(3))   // within-phase latency regression
	f.Add(uint64(1), byte(5), byte(12))  // software system, max fabric
	f.Fuzz(func(t *testing.T, seed uint64, sysIdx, acs byte) {
		r := rand.New(rand.NewSource(int64(seed)))
		is := oracle.GenHardware(r)
		tr := oracle.GenWorkload(r, is)
		sys := oracle.Systems[int(sysIdx)%len(oracle.Systems)]
		numACs := int(acs % 13)

		ort, err := oracle.NewSystem(sys, is, numACs, tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Run(tr, is, ort, oracle.Options{HistogramBucket: 50_000, Timeline: true})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := rispp.NewRuntime(rispp.Config{ISA: is, Workload: tr, Scheduler: sys, NumACs: numACs, SeedForecasts: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Run(tr, is, rt, sim.Options{HistogramBucket: 50_000, Timeline: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Diff(want, got); err != nil {
			t.Errorf("seed %d, system %s, %d ACs: %v", seed, sys, numACs, err)
			reportShrunk(t, is, tr, sys, numACs)
		}
		if err := oracle.Check(tr, is, got); err != nil {
			t.Errorf("seed %d, system %s, %d ACs: %v", seed, sys, numACs, err)
		}
	})
}
