package oracle_test

import (
	"math/rand"
	"testing"

	"rispp/internal/oracle"
	"rispp/internal/workload"
)

// TestShrinkTraceMinimizes: a predicate that only needs one execution of one
// SI must shrink any large trace down to a single one-execution burst with
// zeroed setups and gaps.
func TestShrinkTraceMinimizes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	is := oracle.GenHardware(r)
	tr := oracle.GenWorkload(r, is)
	var target workload.Burst
	found := false
	for _, p := range tr.Phases {
		for _, b := range p.Bursts {
			if b.Count > 0 {
				target, found = b, true
			}
		}
	}
	if !found {
		t.Skip("seed produced a trace with no executions")
	}
	executesTarget := func(c *workload.Trace) bool {
		for _, p := range c.Phases {
			for _, b := range p.Bursts {
				if b.SI == target.SI && b.Count > 0 {
					return true
				}
			}
		}
		return false
	}
	small := oracle.ShrinkTrace(tr, executesTarget)
	if !executesTarget(small) {
		t.Fatal("shrunk trace no longer fails the predicate")
	}
	if len(small.Phases) != 1 {
		t.Fatalf("shrunk to %d phases, want 1", len(small.Phases))
	}
	p := small.Phases[0]
	if p.Setup != 0 {
		t.Fatalf("shrunk setup = %d, want 0", p.Setup)
	}
	if len(p.Bursts) != 1 {
		t.Fatalf("shrunk to %d bursts, want 1", len(p.Bursts))
	}
	if b := p.Bursts[0]; b.SI != target.SI || b.Count != 1 || b.Gap != 0 {
		t.Fatalf("shrunk burst = %+v, want {SI: %d, Count: 1, Gap: 0}", b, target.SI)
	}
}

// TestShrinkTracePreservesInput: the input trace is never mutated, and a
// passing input comes back unshrunk.
func TestShrinkTracePreservesInput(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	is := oracle.GenHardware(r)
	tr := oracle.GenWorkload(r, is)
	phases := len(tr.Phases)
	var bursts int
	for _, p := range tr.Phases {
		bursts += len(p.Bursts)
	}
	out := oracle.ShrinkTrace(tr, func(*workload.Trace) bool { return false })
	if len(out.Phases) != phases {
		t.Fatalf("passing input shrunk from %d to %d phases", phases, len(out.Phases))
	}
	if len(tr.Phases) != phases {
		t.Fatal("ShrinkTrace mutated its input's phase list")
	}
	var after int
	for _, p := range tr.Phases {
		after += len(p.Bursts)
	}
	if after != bursts {
		t.Fatal("ShrinkTrace mutated its input's bursts")
	}
}
