package oracle

import (
	"rispp/internal/workload"
)

// ShrinkTrace greedily minimizes a failing trace: as long as the predicate
// keeps failing, it drops whole phases, then individual bursts, then
// shrinks burst counts, setups and gaps toward zero. The returned trace
// still fails the predicate and is locally minimal (no single remaining
// reduction preserves the failure), which turns a divergence on a large
// generated input into a reproducer small enough to read. The predicate is
// invoked a bounded number of times, so shrinking terminates even on noisy
// predicates.
func ShrinkTrace(tr *workload.Trace, fails func(*workload.Trace) bool) *workload.Trace {
	cur := cloneTrace(tr)
	if !fails(cur) {
		return cloneTrace(tr) // not a failing input; nothing to shrink
	}
	budget := 4_000
	try := func(cand *workload.Trace) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return fails(cand)
	}
	for improved := true; improved && budget > 0; {
		improved = false

		// Drop whole phases.
		for i := 0; i < len(cur.Phases); {
			cand := cloneTrace(cur)
			cand.Phases = append(cand.Phases[:i], cand.Phases[i+1:]...)
			if try(cand) {
				cur, improved = cand, true
			} else {
				i++
			}
		}

		// Drop individual bursts.
		for pi := 0; pi < len(cur.Phases); pi++ {
			for bi := 0; bi < len(cur.Phases[pi].Bursts); {
				cand := cloneTrace(cur)
				p := &cand.Phases[pi]
				p.Bursts = append(p.Bursts[:bi], p.Bursts[bi+1:]...)
				if try(cand) {
					cur, improved = cand, true
				} else {
					bi++
				}
			}
		}

		// Shrink scalars: halve counts (towards 1), zero setups and gaps.
		for pi := range cur.Phases {
			if cur.Phases[pi].Setup > 0 {
				cand := cloneTrace(cur)
				cand.Phases[pi].Setup = 0
				if try(cand) {
					cur, improved = cand, true
				}
			}
			for bi := range cur.Phases[pi].Bursts {
				for {
					b := cur.Phases[pi].Bursts[bi]
					if b.Count <= 1 {
						break
					}
					cand := cloneTrace(cur)
					cand.Phases[pi].Bursts[bi].Count = b.Count / 2
					if !try(cand) {
						break
					}
					cur, improved = cand, true
				}
				if cur.Phases[pi].Bursts[bi].Gap > 0 {
					cand := cloneTrace(cur)
					cand.Phases[pi].Bursts[bi].Gap = 0
					if try(cand) {
						cur, improved = cand, true
					}
				}
			}
		}
	}
	return cur
}

func cloneTrace(tr *workload.Trace) *workload.Trace {
	out := &workload.Trace{Name: tr.Name, Phases: make([]workload.Phase, len(tr.Phases))}
	for i := range tr.Phases {
		p := tr.Phases[i]
		p.Bursts = append([]workload.Burst(nil), p.Bursts...)
		out.Phases[i] = p
	}
	return out
}
