package hwmodel

import (
	"math"
	"strings"
	"testing"

	"rispp/internal/isa"
)

// TestHEFMatchesTable3 checks the structural model against the paper's
// synthesis results within tight tolerances.
func TestHEFMatchesTable3(t *testing.T) {
	r := HEFScheduler().Resources()
	checks := []struct {
		name      string
		got, want float64
		tolerance float64 // relative
	}{
		{"slices", float64(r.Slices), 549, 0.01},
		{"LUTs", float64(r.LUTs), 915, 0},
		{"FFs", float64(r.FFs), 297, 0},
		{"MULT18X18", float64(r.Mults), 5, 0},
		{"gate equivalents", float64(r.GateEquivalents), 30769, 0.01},
		{"clock delay", r.ClockDelayNs, 12.596, 0.001},
	}
	for _, c := range checks {
		diff := math.Abs(c.got - c.want)
		if c.want != 0 {
			diff /= c.want
		}
		if diff > c.tolerance {
			t.Errorf("HEF %s = %v, want %v (±%v%%)", c.name, c.got, c.want, c.tolerance*100)
		}
	}
}

func TestHEFHasTwelveStates(t *testing.T) {
	if got := HEFScheduler().FSMStates; got != 12 {
		t.Fatalf("FSM states = %d, want 12", got)
	}
}

func TestAvgAtomMatchesTable3(t *testing.T) {
	r := AvgAtom(isa.H264())
	if r.Slices != 421 || r.LUTs != 839 || r.FFs != 45 || r.Mults != 0 {
		t.Fatalf("avg Atom = %+v, want 421/839/45/0", r)
	}
	if math.Abs(float64(r.GateEquivalents)-6944)/6944 > 0.02 {
		t.Fatalf("avg Atom GE = %d, want ≈6944", r.GateEquivalents)
	}
	if r.ClockDelayNs != 1.284 {
		t.Fatalf("avg Atom delay = %v", r.ClockDelayNs)
	}
}

func TestAvgAtomEmptyISA(t *testing.T) {
	if r := AvgAtom(&isa.ISA{}); r.Slices != 0 {
		t.Fatalf("empty ISA avg = %+v", r)
	}
}

// TestHEFFitsOneAC verifies the paper's headline hardware claims: the
// run-time scheduler is cheaper than one additional Atom Container and only
// ~1.3x the average Atom.
func TestHEFFitsOneAC(t *testing.T) {
	hef := HEFScheduler().Resources()
	if hef.Slices >= ACSlices {
		t.Fatalf("HEF (%d slices) does not fit one AC (%d)", hef.Slices, ACSlices)
	}
	atom := AvgAtom(isa.H264())
	ratio := float64(hef.Slices) / float64(atom.Slices)
	if ratio < 1.25 || ratio > 1.35 {
		t.Fatalf("HEF/avg-Atom slice ratio = %.2f, want ≈1.30", ratio)
	}
	// Device utilization ≈ 3.83% of the xc2v3000.
	util := DeviceUtilization(HEFScheduler())
	if math.Abs(util-0.0383) > 0.002 {
		t.Fatalf("device utilization = %.4f, want ≈0.0383", util)
	}
}

// TestDividerAblation shows why the paper avoids the division: the naive
// datapath is bigger and needs 32 iterative cycles per candidate while the
// cross-multiplied comparison is a single pipelined operation.
func TestDividerAblation(t *testing.T) {
	free := HEFScheduler().Resources()
	div := HEFWithDivider().Resources()
	if div.Slices <= free.Slices {
		t.Fatalf("divider variant (%d slices) not bigger than division-free (%d)", div.Slices, free.Slices)
	}
	if DividerCyclesPerOp <= 1 {
		t.Fatal("divider latency model degenerate")
	}
	if div.Mults >= free.Mults {
		t.Fatalf("divider variant should drop the rescale multipliers (%d vs %d)", div.Mults, free.Mults)
	}
}

func TestTable3Rendering(t *testing.T) {
	out := Table3(isa.H264())
	for _, want := range []string{"# Slices", "MULT18X18", "Gate Equivalents", "Atom Container"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 output missing %q:\n%s", want, out)
		}
	}
}

// TestPointArea pins the area model the exploration records and the search
// layer price points with: software occupies no fabric, Molen pays the AC
// array plus a small loader, RISPP schedulers pay the AC array plus the HEF
// module, and area is strictly monotone in the AC budget.
func TestPointArea(t *testing.T) {
	if a := PointArea("software", 10); a != 0 {
		t.Fatalf("software area = %d, want 0", a)
	}
	hef := int64(HEFScheduler().Resources().Slices)
	molen := int64(MolenLoader().Resources().Slices)
	if molen <= 0 || molen >= hef {
		t.Fatalf("Molen loader slices = %d, want in (0, %d)", molen, hef)
	}
	if a := PointArea("Molen", 5); a != 5*ACSlices+molen {
		t.Fatalf("Molen area = %d, want %d", a, 5*ACSlices+molen)
	}
	for _, s := range []string{"HEF", "FSFR", "ASF", "SJF"} {
		if a := PointArea(s, 7); a != 7*ACSlices+hef {
			t.Fatalf("%s area = %d, want %d", s, a, 7*ACSlices+hef)
		}
	}
	if PointArea("HEF", 5) >= PointArea("HEF", 6) {
		t.Fatal("area not monotone in ACs")
	}
	if a := PointArea("HEF", -3); a != hef {
		t.Fatalf("negative ACs clamp: area = %d, want %d", a, hef)
	}
}

func TestFFDominatedPacking(t *testing.T) {
	m := &Module{Name: "regfile", Components: []Component{
		{"registers", Datapath, 10, 400, 0},
	}}
	r := m.Resources()
	if r.Slices != 200 {
		t.Fatalf("FF-dominated slices = %d, want 200", r.Slices)
	}
}
