// Package hwmodel estimates the hardware cost of the RISPP run-time
// components on the paper's target technology (Xilinx Virtex-II
// xc2v3000-6), reproducing the synthesis results of Table 3: the HEF
// scheduler module — a 12-state FSM with a pipelined, division-free benefit
// datapath — against the average Atom.
//
// The model is structural: a module is a list of components with LUT / FF /
// MULT18X18 counts; slices follow from technology packing (a Virtex-II
// slice holds two 4-input LUTs and two flip-flops; datapath logic packs
// tightly at 2 LUTs/slice, irregular control logic at ~1.33 LUTs/slice),
// gate equivalents and clock delay from per-primitive tables.
package hwmodel

import (
	"fmt"
	"strings"

	"rispp/internal/isa"
)

// Class distinguishes packing density of a component's logic.
type Class int

const (
	// Datapath logic (adders, monus units, comparators) packs two LUTs per
	// slice.
	Datapath Class = iota
	// Control logic (FSM next-state functions, iterators) packs poorly:
	// three LUTs occupy four slice halves (~1.33 LUTs per slice).
	Control
)

// Technology constants of the Virtex-II target.
const (
	// ACSlices is the size of one Atom Container on the prototype: the HEF
	// scheduler must fit within it to be "cheaper than one more AC".
	ACSlices = 1024

	geDatapathLUT = 8    // gate equivalents per datapath LUT
	geControlLUT  = 18   // per control LUT (wide input functions)
	geFF          = 8    // per flip-flop
	geMult        = 3456 // per MULT18X18 block
)

// Component is one structural building block of a module.
type Component struct {
	Name  string
	Class Class
	LUTs  int
	FFs   int
	Mults int
}

// PathElement is one hop on a module's critical path.
type PathElement struct {
	Name    string
	DelayNs float64
}

// Module is a synthesizable block: components plus the pipeline stage
// critical path that determines its clock.
type Module struct {
	Name         string
	FSMStates    int
	Components   []Component
	CriticalPath []PathElement
}

// Resources summarizes synthesis results (the columns of Table 3).
type Resources struct {
	Slices          int
	LUTs            int
	FFs             int
	Mults           int
	GateEquivalents int
	ClockDelayNs    float64
}

// Resources runs the cost model over the module.
func (m *Module) Resources() Resources {
	var r Resources
	var dpLUTs, ctlLUTs int
	for _, c := range m.Components {
		r.LUTs += c.LUTs
		r.FFs += c.FFs
		r.Mults += c.Mults
		if c.Class == Control {
			ctlLUTs += c.LUTs
		} else {
			dpLUTs += c.LUTs
		}
	}
	// Packing: datapath 2 LUTs/slice; control 4 slice-halves per 3 LUTs.
	r.Slices = (dpLUTs+1)/2 + (ctlLUTs*3+3)/4
	// FF-dominated modules need at least FFs/2 slices.
	if ff := (r.FFs + 1) / 2; ff > r.Slices {
		r.Slices = ff
	}
	r.GateEquivalents = dpLUTs*geDatapathLUT + ctlLUTs*geControlLUT + r.FFs*geFF + r.Mults*geMult
	for _, p := range m.CriticalPath {
		r.ClockDelayNs += p.DelayNs
	}
	return r
}

// HEFScheduler is the structural model of the paper's HEF hardware
// implementation: a finite state machine with 12 states driving a pipelined
// benefit computation. The expensive division of
//
//	benefit = (expected · Δlatency) / additionalAtoms
//
// is avoided by cross-multiplying the comparison (a·b)/c > (d·e)/f into
// (a·b)·f > (d·e)·c (legal because the additional-Atom counts c, f are
// always positive after candidate cleaning), which costs five MULT18X18
// blocks: one for the 18×18 product a·b, two for the 32×18 product with f,
// and two to re-scale the stored best side by c.
func HEFScheduler() *Module {
	return &Module{
		Name:      "HEF scheduler",
		FSMStates: 12,
		Components: []Component{
			{"FSM (12 states) + handshake", Control, 120, 24, 0},
			{"Molecule candidate iterator", Control, 146, 41, 0},
			{"candidate cleaning (eq. 4)", Control, 100, 32, 0},
			{"monus / determinant datapath (a ⊖ o, |·|)", Datapath, 249, 48, 0},
			{"benefit stage 1: expected × Δlatency", Datapath, 50, 32, 1},
			{"benefit stage 2: (e·Δ) × addAtoms(best)", Datapath, 60, 64, 2},
			{"best-side rescale: best × addAtoms(cand)", Datapath, 60, 40, 2},
			{"48-bit benefit comparator + best register", Datapath, 130, 16, 0},
		},
		CriticalPath: []PathElement{
			{"MULT18X18 (32×18 partial product)", 6.846},
			{"interconnect", 2.10},
			{"48-bit comparator", 2.95},
			{"register setup", 0.70},
		},
	}
}

// HEFWithDivider models the naive HEF datapath that divides instead of
// cross-multiplying: a 32-bit restoring divider replaces the two rescale
// multipliers. It exists for the ablation showing why the paper avoids the
// division (Section 5): more area, and a 32-cycle iterative latency per
// candidate instead of one pipelined comparison per cycle.
func HEFWithDivider() *Module {
	m := HEFScheduler()
	m.Name = "HEF scheduler (with divider)"
	comps := m.Components[:0]
	for _, c := range m.Components {
		switch c.Name {
		case "benefit stage 2: (e·Δ) × addAtoms(best)",
			"best-side rescale: best × addAtoms(cand)":
			// dropped: replaced by the divider below
		default:
			comps = append(comps, c)
		}
	}
	m.Components = append(comps,
		Component{"32-bit restoring divider (32 cycles/op)", Datapath, 540, 130, 0},
	)
	m.CriticalPath = []PathElement{
		{"MULT18X18 (18×18 product)", 6.846},
		{"interconnect", 2.10},
		{"divider subtract/shift stage", 4.35},
		{"register setup", 0.70},
	}
	return m
}

// DividerCyclesPerOp is the iterative latency of the restoring divider in
// HEFWithDivider; the division-free comparison decides in a single
// pipelined cycle.
const DividerCyclesPerOp = 32

// AvgAtomDelayNs is the measured clock delay of the average Atom data path
// (Table 3): a single LUT level between pipeline registers.
const AvgAtomDelayNs = 1.284

// AvgAtom aggregates the synthesis characteristics of the ISA's Atoms into
// the Table 3 "Avg. Atom" column. Atoms are pure datapath modules.
func AvgAtom(is *isa.ISA) Resources {
	var r Resources
	n := len(is.Atoms)
	if n == 0 {
		return r
	}
	var slices, luts, ffs int
	for _, a := range is.Atoms {
		slices += a.Slices
		luts += a.LUTs
		ffs += a.FFs
	}
	r.Slices = slices / n
	r.LUTs = luts / n
	r.FFs = ffs / n
	r.GateEquivalents = (luts*geDatapathLUT + ffs*geFF) / n
	r.ClockDelayNs = AvgAtomDelayNs
	return r
}

// Table3 renders the paper's Table 3 comparison for the given ISA.
func Table3(is *isa.ISA) string {
	hef := HEFScheduler().Resources()
	atom := AvgAtom(is)
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %10s\n", "Characteristics", "HEF sched.", "Avg. Atom")
	fmt.Fprintf(&b, "%-20s %12d %10d\n", "# Slices", hef.Slices, atom.Slices)
	fmt.Fprintf(&b, "%-20s %12d %10d\n", "# LUTs", hef.LUTs, atom.LUTs)
	fmt.Fprintf(&b, "%-20s %12d %10d\n", "# FFs", hef.FFs, atom.FFs)
	fmt.Fprintf(&b, "%-20s %12d %10d\n", "# MULT18X18", hef.Mults, atom.Mults)
	fmt.Fprintf(&b, "%-20s %12d %10d\n", "Gate Equivalents", hef.GateEquivalents, atom.GateEquivalents)
	fmt.Fprintf(&b, "%-20s %12.3f %10.3f\n", "Clock delay [ns]", hef.ClockDelayNs, atom.ClockDelayNs)
	fmt.Fprintf(&b, "\nHEF uses %.2f%% of one Atom Container (%d slices), %.2fx the average Atom.\n",
		100*float64(hef.Slices)/float64(ACSlices), ACSlices, float64(hef.Slices)/float64(atom.Slices))
	return b.String()
}

// MolenLoader is the structural model of the Molen baseline's
// reconfiguration controller: the set/execute decode FSM and the CCU load
// address generator. The baseline reconfigures whole Special Instructions
// and never computes benefits, so it carries no scheduler datapath — the
// area gap to the HEF module is the hardware price of fine-grained
// upgrading.
func MolenLoader() *Module {
	return &Module{
		Name:      "Molen reconfiguration controller",
		FSMStates: 4,
		Components: []Component{
			{"set/execute decode + FSM", Control, 96, 18, 0},
			{"CCU load address generator", Datapath, 64, 32, 0},
		},
		CriticalPath: []PathElement{
			{"address adder", 2.45},
			{"interconnect", 2.10},
			{"register setup", 0.70},
		},
	}
}

// SchedulerSlices returns the slice cost of a run-time system's fixed
// hardware: zero for "software" (no reconfigurable fabric at all), the
// loader FSM for "Molen", and the full HEF scheduler module for the RISPP
// SI-schedulers — the paper synthesizes HEF (Table 3); FSFR/ASF/SJF share
// its iterator and datapath and differ only in comparator wiring, so HEF
// prices them all.
func SchedulerSlices(scheduler string) int {
	switch scheduler {
	case "software":
		return 0
	case "Molen", "molen":
		return molenSlices
	default:
		return hefSlices
	}
}

// The module netlists are fixed, so their slice counts are computed once:
// area pricing runs per explore record and must not allocate.
var (
	molenSlices = MolenLoader().Resources().Slices
	hefSlices   = HEFScheduler().Resources().Slices
)

// PointArea estimates the reconfigurable-fabric area of a design point, in
// Virtex-II slices: the Atom-Container array (NumACs × ACSlices) plus the
// run-time system's fixed hardware (SchedulerSlices). It is a pure function
// of (scheduler, #ACs) — the second objective of cycles-vs-area design-space
// search, and the "area" field of every explore record.
func PointArea(scheduler string, numACs int) int64 {
	if scheduler == "software" {
		return 0
	}
	if numACs < 0 {
		numACs = 0
	}
	return int64(numACs)*ACSlices + int64(SchedulerSlices(scheduler))
}

// SlicesOfXC2V3000 is the total slice count of the prototype FPGA; the HEF
// utilization the paper reports (3.83%) is relative to a 14,336-slice
// device.
const SlicesOfXC2V3000 = 14336

// DeviceUtilization returns the fraction of the prototype FPGA the module
// occupies.
func DeviceUtilization(m *Module) float64 {
	return float64(m.Resources().Slices) / float64(SlicesOfXC2V3000)
}
