// Package membus models the shared memory bus between the processor core
// and the reconfiguration DMA. The paper's related-work discussion notes
// that Molen couples its reconfigurable hardware "via a dual-port register
// file and an arbiter for shared memory"; on the RISPP prototype the
// SelectMap/ICAP port likewise streams partial bitstreams from the same
// memory the core executes from. This package quantifies that contention:
// given the core's memory-traffic intensity and an arbitration policy, it
// derives the effective reconfiguration bandwidth (stretching the Atom
// reload times) and the slowdown of the core's own glue code.
//
// The model is max-min style bandwidth allocation over a unit-capacity
// bus; it is deliberately simple, but it turns "reconfiguration bandwidth"
// from a free constant into a consequence of system load — and the
// resulting experiment (BenchmarkAblationBusContention) shows the SI
// scheduler mattering more the more the port is starved.
package membus

import (
	"fmt"

	"rispp/internal/reconfig"
	"rispp/internal/workload"
)

// Policy selects the bus arbitration.
type Policy int

const (
	// CPUPriority always serves the core first; the reconfiguration DMA
	// gets the leftover bandwidth (the common embedded default — code
	// execution must not stall).
	CPUPriority Policy = iota
	// DMAPriority serves the reconfiguration stream first; the core's
	// memory operations stall behind it.
	DMAPriority
	// Fair splits contended bandwidth max-min fairly.
	Fair
)

func (p Policy) String() string {
	switch p {
	case CPUPriority:
		return "cpu-priority"
	case DMAPriority:
		return "dma-priority"
	case Fair:
		return "fair"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes the bus and its load.
type Config struct {
	Policy Policy
	// CPULoad is the fraction of bus capacity the core's load/store
	// traffic demands (0..1).
	CPULoad float64
	// DMADemand is the fraction of bus capacity the reconfiguration port
	// demands while streaming a bitstream (0..1). The prototype's 66 MB/s
	// SelectMap against a ~266 MB/s memory system gives the 0.25 default.
	DMADemand float64
}

func (c *Config) setDefaults() {
	if c.DMADemand == 0 {
		c.DMADemand = 0.25
	}
}

// clamp01 bounds a fraction.
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Shares returns the bus fractions granted to the core and the DMA under
// the configured policy.
func (c Config) Shares() (cpu, dma float64) {
	c.setDefaults()
	cpuD := clamp01(c.CPULoad)
	dmaD := clamp01(c.DMADemand)
	if cpuD+dmaD <= 1 {
		return cpuD, dmaD
	}
	switch c.Policy {
	case CPUPriority:
		cpu = cpuD
		dma = 1 - cpu
	case DMAPriority:
		dma = dmaD
		cpu = 1 - dma
	case Fair:
		// Max-min: both get half; a demand below half returns its surplus.
		cpu, dma = 0.5, 0.5
		if cpuD < 0.5 {
			cpu = cpuD
			dma = 1 - cpu
		}
		if dmaD < 0.5 {
			dma = dmaD
			cpu = 1 - dma
		}
	}
	return cpu, dma
}

// DMAStretch returns the factor by which Atom reload times grow.
func (c Config) DMAStretch() float64 {
	c.setDefaults()
	_, dma := c.Shares()
	if dma <= 0 {
		return 1e9 // starved: effectively no reconfiguration
	}
	return clamp01(c.DMADemand) / dma
}

// CPUStretch returns the factor by which the core's memory-bound glue
// cycles grow.
func (c Config) CPUStretch() float64 {
	c.setDefaults()
	cpu, _ := c.Shares()
	d := clamp01(c.CPULoad)
	if d == 0 {
		return 1
	}
	if cpu <= 0 {
		return 1e9
	}
	return d / cpu
}

// Timing derives the effective reconfiguration timing under contention.
func (c Config) Timing(raw reconfig.Timing) reconfig.Timing {
	stretch := c.DMAStretch()
	eff := raw
	eff.BandwidthBps = int64(float64(raw.BandwidthBps) / stretch)
	if eff.BandwidthBps < 1 {
		eff.BandwidthBps = 1
	}
	return eff
}

// ApplyToTrace returns a copy of the trace with the base-processor glue
// cycles (burst gaps and phase setup) stretched by the core's slowdown —
// the cost the core pays for sharing the bus.
func (c Config) ApplyToTrace(tr *workload.Trace) *workload.Trace {
	stretch := c.CPUStretch()
	if stretch == 1 {
		return tr
	}
	out := &workload.Trace{Name: tr.Name + "+bus", Phases: make([]workload.Phase, len(tr.Phases))}
	for i := range tr.Phases {
		p := tr.Phases[i]
		np := workload.Phase{
			HotSpot: p.HotSpot,
			Setup:   int64(float64(p.Setup) * stretch),
			Bursts:  make([]workload.Burst, len(p.Bursts)),
		}
		for j, b := range p.Bursts {
			b.Gap = int(float64(b.Gap) * stretch)
			np.Bursts[j] = b
		}
		out.Phases[i] = np
	}
	return out
}
