package membus

import (
	"math"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/reconfig"
	"rispp/internal/workload"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSharesUncontended(t *testing.T) {
	c := Config{Policy: CPUPriority, CPULoad: 0.3, DMADemand: 0.25}
	cpu, dma := c.Shares()
	if !almost(cpu, 0.3) || !almost(dma, 0.25) {
		t.Fatalf("uncontended shares = %v, %v", cpu, dma)
	}
	if c.DMAStretch() != 1 || c.CPUStretch() != 1 {
		t.Fatal("uncontended bus must not stretch anything")
	}
}

func TestSharesCPUPriority(t *testing.T) {
	c := Config{Policy: CPUPriority, CPULoad: 0.9, DMADemand: 0.25}
	cpu, dma := c.Shares()
	if !almost(cpu, 0.9) || !almost(dma, 0.1) {
		t.Fatalf("shares = %v, %v", cpu, dma)
	}
	if got := c.DMAStretch(); !almost(got, 2.5) {
		t.Fatalf("DMA stretch = %v, want 2.5 (0.25/0.1)", got)
	}
	if c.CPUStretch() != 1 {
		t.Fatal("prioritized core must not stretch")
	}
}

func TestSharesDMAPriority(t *testing.T) {
	c := Config{Policy: DMAPriority, CPULoad: 0.9, DMADemand: 0.25}
	cpu, dma := c.Shares()
	if !almost(dma, 0.25) || !almost(cpu, 0.75) {
		t.Fatalf("shares = %v, %v", cpu, dma)
	}
	if got := c.CPUStretch(); !almost(got, 0.9/0.75) {
		t.Fatalf("CPU stretch = %v", got)
	}
	if c.DMAStretch() != 1 {
		t.Fatal("prioritized DMA must not stretch")
	}
}

func TestSharesFair(t *testing.T) {
	// Both over half: split down the middle.
	c := Config{Policy: Fair, CPULoad: 0.9, DMADemand: 0.7}
	cpu, dma := c.Shares()
	if !almost(cpu, 0.5) || !almost(dma, 0.5) {
		t.Fatalf("fair shares = %v, %v", cpu, dma)
	}
	// DMA under half: it gets its demand, the core the rest.
	c = Config{Policy: Fair, CPULoad: 0.9, DMADemand: 0.25}
	cpu, dma = c.Shares()
	if !almost(dma, 0.25) || !almost(cpu, 0.75) {
		t.Fatalf("fair shares = %v, %v", cpu, dma)
	}
}

func TestStarvedDMA(t *testing.T) {
	c := Config{Policy: CPUPriority, CPULoad: 1.0, DMADemand: 0.25}
	if c.DMAStretch() < 1e6 {
		t.Fatal("fully loaded CPU-priority bus should starve the DMA")
	}
}

func TestTimingStretch(t *testing.T) {
	raw := reconfig.DefaultTiming()
	c := Config{Policy: CPUPriority, CPULoad: 0.9, DMADemand: 0.25}
	eff := c.Timing(raw)
	// 2.5x stretch → 2.5x longer Atom loads.
	rawCycles := raw.LoadCycles(60488)
	effCycles := eff.LoadCycles(60488)
	ratio := float64(effCycles) / float64(rawCycles)
	if math.Abs(ratio-2.5) > 0.01 {
		t.Fatalf("load stretch = %v, want 2.5", ratio)
	}
}

func TestApplyToTrace(t *testing.T) {
	tr := workload.NewBuilder("t").
		Phase(isa.HotSpotME, 1000).
		Burst(isa.SISAD, 10, 8).
		Build()
	c := Config{Policy: DMAPriority, CPULoad: 0.9, DMADemand: 0.25} // CPU stretch 1.2
	out := c.ApplyToTrace(tr)
	if out.Phases[0].Setup != 1200 {
		t.Fatalf("setup = %d, want 1200", out.Phases[0].Setup)
	}
	if out.Phases[0].Bursts[0].Gap != 9 { // 8 × 1.2 = 9.6 → 9 (truncated)
		t.Fatalf("gap = %d", out.Phases[0].Bursts[0].Gap)
	}
	// The original trace is untouched.
	if tr.Phases[0].Setup != 1000 || tr.Phases[0].Bursts[0].Gap != 8 {
		t.Fatal("ApplyToTrace mutated its input")
	}
	// No contention → same trace returned.
	idle := Config{Policy: CPUPriority, CPULoad: 0.2}
	if idle.ApplyToTrace(tr) != tr {
		t.Fatal("uncontended ApplyToTrace should return the input unchanged")
	}
}

func TestPolicyString(t *testing.T) {
	if CPUPriority.String() != "cpu-priority" || DMAPriority.String() != "dma-priority" || Fair.String() != "fair" {
		t.Fatal("Policy.String broken")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy String broken")
	}
}
