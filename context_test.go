package rispp

import (
	"context"
	"errors"
	"testing"

	"rispp/internal/workload"
)

// TestRunContextCancellation checks the context is honoured between
// simulation events: an already-canceled context must abort the run, and a
// background context must reproduce Run exactly.
func TestRunContextCancellation(t *testing.T) {
	cfg := Config{
		Scheduler:     "HEF",
		NumACs:        10,
		Workload:      workload.H264(workload.H264Config{Frames: 2}),
		SeedForecasts: true,
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCycles != want.TotalCycles || got.StallCycles != want.StallCycles {
		t.Fatalf("RunContext(Background) diverges from Run: %d/%d vs %d/%d",
			got.TotalCycles, got.StallCycles, want.TotalCycles, want.StallCycles)
	}
}
