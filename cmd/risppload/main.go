// Command risppload soak-tests risppserve under deterministic multi-tenant
// load and gates on SLOs. With no -target it spawns an in-process server,
// drives the profile's seeded request mix against it (two tenants, both
// priority classes, bursts), writes a machine-readable JSON report, and
// exits 1 when any SLO assertion fails — which is how the CI soak job
// turns a tail-latency or fairness regression into a red build.
//
//	risppload -profile quick -report soak-report.json
//	risppload -profile long -pprof-dir pprof/
//	risppload -target http://localhost:8264 -duration 30s
//
// -fleet switches to the distributed-sweep smoke scenario instead: it
// spawns an in-process coordinator plus -fleet-size workers, shards a sweep
// across them while hard-killing one worker mid-stream, and exits 1 unless
// the merged stream is byte-identical to a single-process sweep and a warm
// re-run simulates zero points fleet-wide. This is the CI fabric-smoke
// gate.
//
//	risppload -fleet -fleet-size 3 -report fleet-report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"rispp/internal/load"
)

func main() {
	var (
		profile  = flag.String("profile", "quick", "base profile: quick (~15s PR gate) or long (~5m nightly)")
		target   = flag.String("target", "", "base URL of a running server (default: spawn one in-process)")
		seed     = flag.Int64("seed", 8264, "PRNG seed for the request mix (same seed → same requests)")
		duration = flag.Duration("duration", 0, "override the profile's run length")
		report   = flag.String("report", "", "write the JSON report to this file (default: stdout only)")
		pprofDir = flag.String("pprof-dir", "", "capture CPU+heap profiles from the target into this directory")

		p99      = flag.Float64("p99", 0, "override SLO: max p99 simulate latency in ms")
		shed     = flag.Float64("shed", -1, "override SLO: max shed rate (fraction)")
		fairness = flag.Float64("fairness", -1, "override SLO: min weighted fairness between tenants")
		max5xx   = flag.Int64("max-5xx", -1, "override SLO: max 5xx responses (default: zero tolerated)")

		fleet     = flag.Bool("fleet", false, "run the distributed-sweep smoke scenario instead of the soak profile")
		fleetSize = flag.Int("fleet-size", 3, "fleet mode: number of in-process workers")
		noKill    = flag.Bool("fleet-no-kill", false, "fleet mode: skip the induced mid-sweep worker kill")
		killAfter = flag.Int("fleet-kill-after", 1, "fleet mode: merged records to stream before the kill")
	)
	flag.Parse()

	if *fleet {
		runFleet(*fleetSize, !*noKill, *killAfter, *report)
		return
	}

	var p load.Profile
	switch *profile {
	case "quick":
		p = load.Quick(*seed)
	case "long":
		p = load.Long(*seed)
	default:
		log.Fatalf("risppload: unknown -profile %q (want quick or long)", *profile)
	}
	p.Target = *target
	p.PprofDir = *pprofDir
	if *duration > 0 {
		p.Duration = *duration
	}
	if *p99 > 0 {
		p.SLO.MaxP99SimulateMS = *p99
	}
	if *shed >= 0 {
		p.SLO.MaxShedRate = *shed
	}
	if *fairness >= 0 {
		p.SLO.MinFairness = *fairness
	}
	if *max5xx >= 0 {
		p.SLO.MaxServerErrors = *max5xx
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := load.Run(ctx, p, log.Printf)
	if err != nil {
		log.Fatalf("risppload: %v", err)
	}

	if *report != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("risppload: marshal report: %v", err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*report, b, 0o644); err != nil {
			log.Fatalf("risppload: write report: %v", err)
		}
	}

	printSummary(rep, time.Since(start))
	if !rep.Pass {
		fmt.Println("\nSLO VIOLATIONS:")
		for _, v := range rep.Violations {
			fmt.Printf("  ✗ %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("\nall SLOs met")
}

// runFleet executes the fabric-smoke scenario and exits with the gate's
// verdict: 0 on full byte parity + zero warm re-simulation, 1 otherwise.
func runFleet(workers int, kill bool, killAfter int, reportPath string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := load.RunFleet(ctx, load.FleetProfile{
		Workers:        workers,
		KillWorker:     kill,
		KillAfterLines: killAfter,
	}, log.Printf)
	if err != nil {
		log.Fatalf("risppload: fleet: %v", err)
	}

	if reportPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("risppload: marshal fleet report: %v", err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(reportPath, b, 0o644); err != nil {
			log.Fatalf("risppload: write fleet report: %v", err)
		}
	}

	fmt.Printf("fleet      %d workers · %d points (%.1fs wall)\n", rep.Workers, rep.Points, time.Since(start).Seconds())
	if rep.Killed != "" {
		fmt.Printf("killed     %s mid-sweep · %d shard retries · %d worker failures\n",
			rep.Killed, rep.ShardRetries, rep.WorkerFailures)
	}
	fmt.Printf("cold       %d records · %d simulated\n", rep.ColdLines, rep.ColdSimulated)
	fmt.Printf("warm       %d records · %d simulated\n", rep.WarmLines, rep.WarmSimulated)
	fmt.Printf("parity     %v\n", rep.ParityOK)
	if !rep.Pass {
		fmt.Println("\nFLEET VIOLATIONS:")
		for _, v := range rep.Violations {
			fmt.Printf("  ✗ %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("\nfleet sweep byte-identical, warm re-run served entirely from cache")
}

func printSummary(rep *load.Report, wall time.Duration) {
	fmt.Printf("target     %s (seed %d, %.1fs wall)\n", rep.Target, rep.Seed, wall.Seconds())
	fmt.Printf("requests   %d total · %d ok · %d shed · %d 5xx · %d other\n",
		rep.Total.Requests, rep.Total.OK, rep.Total.Shed, rep.Total.Errors5x, rep.Total.Other)
	fmt.Printf("shed rate  %.3f · fairness %.3f\n", rep.ShedRate, rep.Fairness)

	routes := make([]string, 0, len(rep.Routes))
	for r := range rep.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		s := rep.Routes[r]
		fmt.Printf("  %-14s %6d req  p50 %7.1fms  p99 %7.1fms  max %7.1fms\n",
			r, s.Requests, s.P50MS, s.P99MS, s.MaxMS)
	}
	tenants := make([]string, 0, len(rep.Tenants))
	for t := range rep.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		tr := rep.Tenants[t]
		fmt.Printf("  tenant %-8s weight %.0f  %6d req  %6d ok  weighted share %.1f\n",
			t, tr.Weight, tr.Total.Requests, tr.Total.OK, tr.WeightedShare)
	}
	if len(rep.Server.EndpointP99MS) > 0 {
		fmt.Printf("  server-side simulate p99 %.1fms (from /metrics histogram)\n",
			rep.Server.EndpointP99MS["/v1/simulate"])
	}
}
