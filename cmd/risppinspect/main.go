// Command risppinspect dumps the internals of the RISPP library: the SI /
// Molecule library of the H.264 ISA, the Atom schedules each scheduler
// produces for a given scenario, and the hardware cost model.
//
// Usage:
//
//	risppinspect -what isa
//	risppinspect -what schedule -hotspot ME -acs 10
//	risppinspect -what hw
package main

import (
	"flag"
	"fmt"
	"os"

	"rispp/internal/hwmodel"
	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/rtl"
	"rispp/internal/sched"
	"rispp/internal/selection"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

func main() {
	var (
		what    = flag.String("what", "isa", "isa, schedule, hw or rtl")
		hotspot = flag.String("hotspot", "ME", "hot spot for -what schedule: ME, EE or LF")
		acs     = flag.Int("acs", 10, "Atom Containers for -what schedule")
	)
	flag.Parse()

	is := isa.H264()
	switch *what {
	case "isa":
		dumpISA(is)
	case "schedule":
		dumpSchedules(is, *hotspot, *acs)
	case "hw":
		fmt.Print(hwmodel.Table3(is))
		fmt.Printf("\nHEF FSM states: %d\n", hwmodel.HEFScheduler().FSMStates)
		fmt.Printf("device utilization (xc2v3000): %.2f%%\n", 100*hwmodel.DeviceUtilization(hwmodel.HEFScheduler()))
		div := hwmodel.HEFWithDivider().Resources()
		hef := hwmodel.HEFScheduler().Resources()
		fmt.Printf("\ndivision ablation: with divider %d slices / %d cycles per benefit,\n",
			div.Slices, hwmodel.DividerCyclesPerOp)
		fmt.Printf("division-free %d slices / 1 cycle per benefit comparison\n", hef.Slices)
	case "rtl":
		dumpRTL()
	default:
		fmt.Fprintf(os.Stderr, "risppinspect: unknown -what %q\n", *what)
		os.Exit(2)
	}
}

func dumpRTL() {
	for _, blk := range []struct {
		name  string
		build func() (*rtl.Circuit, error)
		mod   string
	}{
		{"SAD16 Atom data path", rtl.SAD16Atom, "sad16_atom"},
		{"Hadamard butterfly (Transform Atom)", rtl.Hadamard4Atom, "hadamard4_atom"},
		{"6-tap point filter (MC chain)", rtl.PointFilterAtom, "pointfilter_atom"},
		{"SATD 4x4 data path", rtl.SATD4x4Atoms, "satd4x4"},
		{"HEF benefit comparator", rtl.BenefitComparator, "hef_benefit_cmp"},
	} {
		c, err := blk.build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "risppinspect:", err)
			os.Exit(1)
		}
		r := c.Resources()
		fmt.Printf("=== %s ===\n", blk.name)
		fmt.Printf("netlist: %s\n", c.Stats())
		fmt.Printf("resources: %d LUTs, %d FFs, %d MULT18X18, depth %d\n\n", r.LUTs, r.FFs, r.Mults, r.Depth)
		fmt.Println(c.Verilog(blk.mod))
	}
}

func dumpISA(is *isa.ISA) {
	fmt.Printf("ISA: %s — %d Atom types, %d SIs\n\n", is.Name, len(is.Atoms), len(is.SIs))
	tb := &stats.Table{Header: []string{"Atom", "bitstream [B]", "slices", "LUTs", "FFs"}}
	for _, a := range is.Atoms {
		tb.AddRow(a.Name, fmt.Sprint(a.BitstreamBytes), fmt.Sprint(a.Slices), fmt.Sprint(a.LUTs), fmt.Sprint(a.FFs))
	}
	fmt.Print(tb.String())
	for i := range is.SIs {
		si := &is.SIs[i]
		fmt.Printf("\nSI %q (hot spot %d, software latency %d):\n", si.Name, si.HotSpot, si.SWLatency)
		for _, m := range si.Molecules {
			fmt.Printf("  %v  latency %d  (|m| = %d Atoms)\n", m.Atoms, m.Latency, m.Determinant())
		}
	}
}

func dumpSchedules(is *isa.ISA, hotspot string, acs int) {
	var h isa.HotSpotID
	switch hotspot {
	case "ME":
		h = isa.HotSpotME
	case "EE":
		h = isa.HotSpotEE
	case "LF":
		h = isa.HotSpotLF
	default:
		fmt.Fprintf(os.Stderr, "risppinspect: unknown hot spot %q\n", hotspot)
		os.Exit(2)
	}

	// Forecast from the calibrated workload's first phase of this hot spot.
	tr := workload.H264(workload.H264Config{Frames: 1})
	expected := map[isa.SIID]int64{}
	for i := range tr.Phases {
		if tr.Phases[i].HotSpot != h {
			continue
		}
		for _, b := range tr.Phases[i].Bursts {
			expected[b.SI] += int64(b.Count)
		}
		break
	}
	var cands []selection.Candidate
	for _, si := range is.HotSpotSIs(h) {
		cands = append(cands, selection.Candidate{SI: si, Expected: expected[si.ID]})
	}
	reqs := selection.Greedy(cands, acs, is.Dim())
	fmt.Printf("hot spot %s, %d ACs — selection (NA = %d):\n", hotspot, acs,
		selection.Sup(reqs, is.Dim()).Determinant())
	for _, r := range reqs {
		fmt.Printf("  %-10s %v latency %d (expected %d execs)\n", r.SI.Name, r.Selected.Atoms, r.Selected.Latency, r.Expected)
	}

	avail := molecule.New(is.Dim())
	for _, name := range sched.Names {
		s, _ := sched.New(name)
		seq := s.Schedule(reqs, avail)
		fmt.Printf("\n%s schedule (%d Atom loads):\n ", name, len(seq))
		for _, atom := range seq {
			fmt.Printf(" %s", is.Atom(atom).Name)
		}
		fmt.Println()
	}
}
