// Command risppreplay renders a simulation journal (risppsim -journal) as
// a per-phase timeline: hot-spot durations, Atom loads and SI latency
// steps, with proportional bars.
//
//	risppsim -frames 2 -acs 10 -journal run.jsonl
//	risppreplay -in run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rispp/internal/isa"
	"rispp/internal/sim"
)

func main() {
	in := flag.String("in", "", "journal file (JSONL, from risppsim -journal)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "risppreplay: need -in FILE")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := sim.ReadJournal(f)
	if err != nil {
		fatal(err)
	}
	summary, err := sim.Summarize(events)
	if err != nil {
		fatal(err)
	}

	is := isa.H264()
	name := func(h int) string {
		for _, hs := range is.HotSpots {
			if int(hs.ID) == h {
				return hs.Name
			}
		}
		return fmt.Sprintf("hot spot %d", h)
	}

	var longest int64
	for _, p := range summary.Phases {
		if d := p.End - p.Start; d > longest {
			longest = d
		}
	}
	fmt.Printf("%d events, %d phases, %d Atom loads\n\n", len(events), len(summary.Phases), summary.Loads)
	for i, p := range summary.Phases {
		d := p.End - p.Start
		barLen := 1
		if longest > 0 {
			barLen = 1 + int(d*40/longest)
		}
		fmt.Printf("%3d %-18s %9.3fM cycles |%s| %d loads, %d latency steps\n",
			i, name(p.HotSpot), float64(d)/1e6, strings.Repeat("#", barLen), p.Loads, p.LatencySteps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "risppreplay:", err)
	os.Exit(1)
}
