// Command risppsim runs one RISPP simulation: a scheduler (or the Molen /
// software baselines) on the H.264 CIF encoder workload, printing cycle
// counts, per-SI statistics and optional execution histograms.
//
// Usage:
//
//	risppsim -sched HEF -acs 10 -frames 140
//	risppsim -sched Molen -acs 24
//	risppsim -sched HEF -acs 10 -frames 1 -hist
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"rispp"
	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/molen"
	"rispp/internal/sim"
	"rispp/internal/stats"
	"rispp/internal/video"
	"rispp/internal/workload"
)

func main() {
	var (
		scheduler = flag.String("sched", "HEF", "scheduler: FSFR, ASF, SJF, HEF, Molen or software")
		acs       = flag.Int("acs", 10, "number of Atom Containers")
		frames    = flag.Int("frames", 140, "CIF frames to encode")
		seed      = flag.Int64("seed", 0, "workload PRNG seed")
		motion    = flag.Float64("motion", 0, "per-frame motion variability (0..1)")
		scene     = flag.Int("scene", 0, "scene-change frame (0 = none)")
		prefetch  = flag.Bool("prefetch", false, "enable next-hot-spot reconfiguration prefetching (RISPP)")
		fromVideo = flag.Bool("video", false, "derive the workload from a synthetic video scene instead of the calibrated trace")
		hist      = flag.Bool("hist", false, "print per-SI execution histograms (100K-cycle buckets)")
		timeline  = flag.Bool("timeline", false, "print SI latency steps")
		csv       = flag.Bool("csv", false, "machine-readable summary line")
		journal   = flag.String("journal", "", "write a JSONL simulation journal to this file")
	)
	flag.Parse()

	var tr *workload.Trace
	if *fromVideo {
		tr = video.Trace(video.TraceConfig{
			Scene: video.Scene{
				Seed:             *seed,
				PanX:             1 + 2**motion,
				Objects:          4,
				SceneChangeFrame: *scene,
			},
			Frames: *frames,
		})
	} else {
		tr = workload.H264(workload.H264Config{
			Frames:            *frames,
			Seed:              *seed,
			MotionVariability: *motion,
			SceneChangeFrame:  *scene,
		})
	}
	cfg := rispp.Config{
		Scheduler:     *scheduler,
		NumACs:        *acs,
		Workload:      tr,
		SeedForecasts: true,
		Prefetch:      *prefetch,
	}
	if *hist {
		cfg.Collect.HistogramBucket = 100_000
	}
	cfg.Collect.Timeline = *timeline
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "risppsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		cfg.Collect.Journal = w
	}

	rt, err := rispp.NewRuntime(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risppsim:", err)
		os.Exit(1)
	}
	res, err := sim.Run(tr, isa.H264(), rt, cfg.Collect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risppsim:", err)
		os.Exit(1)
	}

	is := isa.H264()
	if *csv {
		fmt.Printf("%s,%d,%d,%d\n", res.Runtime, *acs, *frames, res.TotalCycles)
		return
	}

	fmt.Printf("runtime:        %s\n", res.Runtime)
	fmt.Printf("atom containers:%d\n", *acs)
	fmt.Printf("frames:         %d\n", *frames)
	fmt.Printf("total cycles:   %d (%.1fM)\n", res.TotalCycles, float64(res.TotalCycles)/1e6)
	fmt.Printf("@100 MHz:       %.1f ms (%.1f fps)\n",
		float64(res.TotalCycles)/1e5, float64(*frames)*1e8/float64(res.TotalCycles))
	switch m := rt.(type) {
	case *core.Manager:
		fmt.Printf("atom loads:     %d (evictions %d, prefetch rounds %d)\n",
			m.AtomLoads(), m.Evictions(), m.Prefetches)
		fmt.Printf("forecast error: %.1f executions (mean abs)\n", m.Monitor().MeanAbsError())
	case *molen.Runtime:
		fmt.Printf("unit loads:     %d (%d atom-sized chunks)\n", m.Loads, m.AtomLoads)
	}

	tb := &stats.Table{Header: []string{"SI", "executions", "software", "hardware", "hw share"}}
	var ids []int
	for _, si := range res.ExecutedSIs() {
		ids = append(ids, int(si))
	}
	for _, id := range ids {
		si := isa.SIID(id)
		total := res.ExecutionsOf(si)
		hw := res.HWExecutionsOf(si)
		tb.AddRow(is.SI(si).Name, fmt.Sprint(total), fmt.Sprint(res.SWExecutionsOf(si)),
			fmt.Sprint(hw), fmt.Sprintf("%.1f%%", 100*float64(hw)/float64(total)))
	}
	fmt.Println()
	fmt.Print(tb.String())

	if res.Histogram != nil {
		fmt.Println("\nexecutions per 100K cycles:")
		labels := []string{}
		series := [][]int64{}
		for _, id := range ids {
			labels = append(labels, is.SI(isa.SIID(id)).Name)
			series = append(series, res.Histogram.Counts(id))
		}
		fmt.Print(stats.Chart(labels, series))
	}
	if res.Timeline != nil {
		fmt.Println("\nlatency steps (cycle:latency):")
		for _, id := range ids {
			ev := res.Timeline.PerSI(id)
			if len(ev) == 0 {
				continue
			}
			fmt.Printf("  %-10s", is.SI(isa.SIID(id)).Name)
			for _, e := range ev {
				fmt.Printf(" %d:%d", e.Cycle, e.Latency)
			}
			fmt.Println()
		}
	}
}
