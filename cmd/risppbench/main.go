// Command risppbench regenerates the tables and figures of the paper's
// evaluation section (DATE 2008).
//
// Usage:
//
//	risppbench                 # everything (Figure 7 / Table 2 take ~10 s)
//	risppbench -exp fig2       # one experiment: table1, fig2, fig4, fig7,
//	                           # table2, fig8, table3, sw
//	risppbench -frames 20      # faster, qualitatively identical sweeps
//	risppbench -cpuprofile cpu.pprof -exp table2   # profile the sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rispp/internal/experiments"
	"rispp/internal/hwmodel"
	"rispp/internal/isa"
	"rispp/internal/profiling"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, fig2, fig4, fig7, table2, fig8, table3, sw, optimal or all")
		frames  = flag.Int("frames", 140, "frames for the Figure 7 / Table 2 sweeps")
		csv     = flag.Bool("csv", false, "emit Figure 7 / Table 2 as CSV instead of tables")
		svgDir  = flag.String("svg", "", "also write SVG figures (fig2, fig7, table2, fig8) into this directory")
		workers = flag.Int("j", 0, "parallel simulations for the sweeps (0 = GOMAXPROCS)")
		cache   = flag.String("cache", "", "content-addressed sweep result cache directory (re-runs only simulate new points)")
		prof    profiling.Config
	)
	prof.AddFlags(flag.CommandLine)
	flag.Parse()

	known := map[string]bool{"all": true, "table1": true, "fig2": true, "fig4": true,
		"fig7": true, "table2": true, "fig8": true, "table3": true, "sw": true, "optimal": true}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "risppbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "risppbench:", err)
		os.Exit(1)
	}
	err = runExperiments(*exp, *csv, *svgDir,
		experiments.Params{Frames: *frames, Workers: *workers, CacheDir: *cache})
	// Stop profiling before exiting so the profiles are complete even when
	// an experiment failed.
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "risppbench:", err)
		os.Exit(1)
	}
}

// runExperiments prints every selected experiment; it returns instead of
// exiting so main can flush profiles first.
func runExperiments(exp string, csv bool, svgDir string, p experiments.Params) error {
	run := func(name string, f func() string) {
		if exp != "all" && exp != name {
			return
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(f())
		fmt.Println()
	}

	var svgErr error
	writeSVG := func(name, svg string) {
		if svgDir == "" || svgErr != nil {
			return
		}
		path := filepath.Join(svgDir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			svgErr = err
			return
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
	}

	run("table1", experiments.Table1)
	run("fig2", func() string {
		r := experiments.Fig2()
		writeSVG("fig2.svg", r.SVG())
		return r.Text
	})
	run("fig4", func() string { return experiments.Fig4().Text })
	run("fig7", func() string {
		r := experiments.Fig7(p)
		writeSVG("fig7.svg", r.SVG())
		if csv {
			return r.CSV()
		}
		return r.Text
	})
	run("table2", func() string {
		r := experiments.Table2(p)
		writeSVG("table2.svg", r.SVG())
		if csv {
			return r.CSV()
		}
		return r.Text
	})
	run("fig8", func() string {
		r := experiments.Fig8()
		writeSVG("fig8.svg", r.SVG())
		return r.Text
	})
	run("table3", func() string { return "Table 3 — Hardware implementation results\n\n" + hwmodel.Table3(isa.H264()) })
	run("sw", func() string { _, txt := experiments.SoftwareBaseline(p); return txt })
	run("optimal", func() string { return experiments.OptimalGap().Text })
	return svgErr
}
