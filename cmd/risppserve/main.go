// Command risppserve runs the RISPP simulation service: an HTTP/JSON
// daemon answering design-point simulations and design-space sweeps over
// the compiled simulator hot path.
//
//	risppserve -addr :8264 -workers 8
//	risppserve -cache .explore-cache          # sweeps reuse cached points
//	risppserve -limits limits.json            # multi-tenant QoS policy
//
// A sweep fleet is one coordinator plus any number of workers:
//
//	risppserve -addr :8264 -coordinator -cache .fleet-cache
//	risppserve -addr :8265 -cache w1 -register http://localhost:8264 -advertise http://localhost:8265
//	risppserve -addr :8266 -cache w2 -register http://localhost:8264 -advertise http://localhost:8266
//
// The coordinator shards /v1/explore (and /v1/jobs) sweeps across the
// registered workers by point hash, re-merges the record streams in
// canonical order — byte-identical to a single process — and re-hashes the
// shards of workers that die mid-sweep. -register also points each worker's
// result-cache lookups at the coordinator's cache (GET/PUT /v1/cache/
// {hash}), so the fleet shares one logical cache. -worker-id defaults to
// the advertised URL; keep it stable so a restarted worker reclaims its
// hash range.
//
//	curl -s localhost:8264/v1/simulate -d '{"scheduler":"HEF","acs":10,"frames":140,"seed_forecasts":true}'
//	curl -s localhost:8264/v1/explore  -d '{"schedulers":["HEF","Molen"],"acs":[5,10,15],"frames":[20]}'
//	curl -s localhost:8264/v1/healthz
//	curl -s localhost:8264/metrics
//
// The -limits file is a serve.QoSConfig JSON document: per-tenant weights,
// quotas, auth tokens and queue depths. SIGHUP re-reads it and hot-swaps
// the policy without dropping in-flight or queued work:
//
//	{
//	  "tenants": {"gold": {"weight": 3}, "bronze": {"weight": 1, "max_inflight": 2}},
//	  "interactive_queue": 64
//	}
//
// SIGINT/SIGTERM drain the server: in-flight simulations finish (bounded
// by -grace), new requests are answered 503.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/fabric"
	"rispp/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8264", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		exploreJ   = flag.Int("explore-j", 0, "per-sweep exploration parallelism (0 = workers)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request simulation deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "upper bound on requested deadlines")
		maxFrames  = flag.Int("max-frames", 10000, "largest workload a request may ask for")
		maxPoints  = flag.Int("max-points", 4096, "largest expanded sweep a request may post")
		cacheDir   = flag.String("cache", "", "content-addressed explore result cache directory (empty = off)")
		respCache  = flag.Int("resp-cache", 4096, "in-memory /v1/simulate response cache entries (-1 = off)")
		grace      = flag.Duration("grace", 30*time.Second, "shutdown drain deadline")
		limits     = flag.String("limits", "", "QoS limits file (serve.QoSConfig JSON); SIGHUP hot-reloads it")
		pprofFlag  = flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
		accessLog  = flag.String("access-log", "", "structured request log destination: a file path or - for stderr")

		coordFlag = flag.Bool("coordinator", false, "coordinate a sweep fleet: shard /v1/explore and /v1/jobs across registered workers")
		fleet     = flag.String("fleet-workers", "", "comma-separated worker base URLs to pre-register (implies -coordinator)")
		register  = flag.String("register", "", "coordinator base URL: register this process as a fleet worker and share its result cache")
		advertise = flag.String("advertise", "", "base URL under which the coordinator reaches this worker (required with -register)")
		workerID  = flag.String("worker-id", "", "stable fleet identity for rendezvous hashing (default: the advertised URL)")
		maxJobs   = flag.Int("max-jobs", 64, "async sweep jobs retained by /v1/jobs")
	)
	flag.Parse()

	cfg := serve.Config{
		Addr:           *addr,
		Workers:        *workers,
		ExploreWorkers: *exploreJ,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxFrames:      *maxFrames,
		MaxPoints:      *maxPoints,
		CacheEntries:   *respCache,
		MaxJobs:        *maxJobs,
		EnablePprof:    *pprofFlag,
	}
	if *limits != "" {
		qos, err := loadLimits(*limits)
		if err != nil {
			fatal(err)
		}
		cfg.QoS = qos
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(fmt.Errorf("access log: %w", err))
		}
		defer f.Close() //nolint:errcheck // best-effort flush on exit
		cfg.AccessLog = f
	}

	base := rispp.Config{}
	if *cacheDir != "" {
		// Persist delta-resimulation trails next to the result cache, so a
		// restarted worker full-skips repeated configurations immediately.
		base.TrailDir = filepath.Join(*cacheDir, "trails")
	}
	srv := serve.New(cfg, base)
	var cache *explore.Cache
	if *cacheDir != "" {
		c, err := explore.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache = c
		srv.SetExploreCache(c)
	}
	if *register != "" {
		if *advertise == "" {
			fatal(errors.New("-register requires -advertise (the URL the coordinator reaches this worker under)"))
		}
		// Worker mode: lookups miss locally, then ask the coordinator's
		// cache; results write through to both tiers.
		srv.SetExploreStore(&fabric.Tiered{Local: cache, Peer: fabric.NewPeer(*register)}, cache)
	}
	if *coordFlag || *fleet != "" {
		coord := fabric.NewCoordinator()
		for _, u := range strings.Split(*fleet, ",") {
			if u = strings.TrimSpace(u); u != "" {
				if err := coord.Register(u, u); err != nil {
					fatal(err)
				}
			}
		}
		srv.SetCoordinator(coord)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	if *register != "" {
		go registerWorker(*register, *workerID, *advertise)
	}

	hupc := make(chan os.Signal, 1)
	signal.Notify(hupc, syscall.SIGHUP)
	go func() {
		for range hupc {
			if *limits == "" {
				fmt.Fprintln(os.Stderr, "risppserve: SIGHUP ignored (no -limits file)")
				continue
			}
			qos, err := loadLimits(*limits)
			if err != nil {
				fmt.Fprintf(os.Stderr, "risppserve: SIGHUP reload failed, keeping current limits: %v\n", err)
				continue
			}
			srv.UpdateQoS(qos)
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "risppserve: %v: draining (grace %s)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "risppserve:", err)
	os.Exit(1)
}

// registerWorker announces this worker to the coordinator, retrying with
// backoff so start order doesn't matter (the coordinator may come up
// later, or restart — losing its registry — while workers keep running).
// Once registered it re-announces periodically: registration is idempotent
// and doubles as the revival path after the coordinator declared this
// worker dead.
func registerWorker(coordURL, id, advertise string) {
	if id == "" {
		id = advertise
	}
	body, err := json.Marshal(struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}{id, advertise})
	if err != nil {
		fatal(fmt.Errorf("register: %w", err))
	}
	delay := time.Second
	for {
		resp, err := http.Post(strings.TrimSuffix(coordURL, "/")+"/v1/workers", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusNoContent {
				delay = 15 * time.Second
			} else {
				fmt.Fprintf(os.Stderr, "risppserve: register at %s: %s\n", coordURL, resp.Status)
			}
		} else {
			fmt.Fprintf(os.Stderr, "risppserve: register at %s: %v\n", coordURL, err)
			if delay < 15*time.Second {
				delay *= 2
			}
		}
		time.Sleep(delay)
	}
}

// loadLimits parses a QoS policy file, rejecting unknown fields so a typo
// in a limits file fails loudly instead of silently dropping a quota.
func loadLimits(path string) (serve.QoSConfig, error) {
	var qos serve.QoSConfig
	b, err := os.ReadFile(path)
	if err != nil {
		return qos, fmt.Errorf("limits: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qos); err != nil {
		return qos, fmt.Errorf("limits %s: %w", path, err)
	}
	return qos, nil
}
