// Command rispptrace generates, inspects and validates workload traces.
//
// Usage:
//
//	rispptrace -gen -frames 20 -motion 0.3 -out trace.json
//	rispptrace -info trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rispp/internal/isa"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

func main() {
	var (
		gen    = flag.Bool("gen", false, "generate an H.264 trace")
		frames = flag.Int("frames", 140, "frames (with -gen)")
		motion = flag.Float64("motion", 0, "motion variability (with -gen)")
		scene  = flag.Int("scene", 0, "scene-change frame (with -gen)")
		seed   = flag.Int64("seed", 0, "PRNG seed (with -gen)")
		out    = flag.String("out", "", "output file (with -gen; default stdout)")
		info   = flag.String("info", "", "trace file to inspect")
	)
	flag.Parse()

	is := isa.H264()
	switch {
	case *gen:
		tr := workload.H264(workload.H264Config{
			Frames:            *frames,
			MotionVariability: *motion,
			SceneChangeFrame:  *scene,
			Seed:              *seed,
		})
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.WriteJSON(w); err != nil {
			fatal(err)
		}
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.ReadJSON(f, is)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace:       %s\n", tr.Name)
		fmt.Printf("phases:      %d\n", len(tr.Phases))
		fmt.Printf("executions:  %d\n", tr.TotalExecutions())
		fmt.Printf("sw cycles:   %d (%.1fM)\n", tr.SoftwareCycles(is), float64(tr.SoftwareCycles(is))/1e6)
		tb := &stats.Table{Header: []string{"SI", "executions"}}
		ex := tr.Executions()
		var ids []int
		for si := range ex {
			ids = append(ids, int(si))
		}
		sort.Ints(ids)
		for _, id := range ids {
			tb.AddRow(is.SI(isa.SIID(id)).Name, fmt.Sprint(ex[isa.SIID(id)]))
		}
		fmt.Println()
		fmt.Print(tb.String())
	default:
		fmt.Fprintln(os.Stderr, "rispptrace: need -gen or -info FILE")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rispptrace:", err)
	os.Exit(1)
}
