// Command rispptrace generates, inspects and validates workload traces.
//
// Usage:
//
//	rispptrace -gen -frames 20 -motion 0.3 -out trace.json
//	rispptrace -gen -scenario video-crypto -frames 12 -seed 3 -out trace.json
//	rispptrace -info trace.json [-scenario video-crypto]
//	rispptrace -scenarios
//	rispptrace -check scenario.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rispp/internal/isa"
	"rispp/internal/scenario"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

func main() {
	var (
		gen       = flag.Bool("gen", false, "generate a trace (H.264 generator, or -scenario)")
		frames    = flag.Int("frames", 140, "frames / scenario iterations (with -gen)")
		motion    = flag.Float64("motion", 0, "motion variability (with -gen, H.264 only)")
		scene     = flag.Int("scene", 0, "scene-change frame (with -gen, H.264 only)")
		seed      = flag.Int64("seed", 0, "PRNG seed (with -gen)")
		scen      = flag.String("scenario", "", "named scenario: its generator builds the trace and its ISA validates -info")
		out       = flag.String("out", "", "output file (with -gen; default stdout)")
		info      = flag.String("info", "", "trace file to inspect")
		list      = flag.Bool("scenarios", false, "list the shipped scenario library")
		checkSpec = flag.String("check", "", "scenario spec file to validate (decode, build ISA, expand once)")
	)
	flag.Parse()

	is, err := resolveISA(*scen)
	if err != nil {
		fatal(err)
	}
	switch {
	case *list:
		tb := &stats.Table{Header: []string{"scenario", "kind", "atoms", "SIs", "hot spots", "digest"}}
		for _, n := range scenario.Names() {
			sc, _ := scenario.Find(n)
			si := sc.ISA()
			tb.AddRow(n, sc.Kind(), fmt.Sprint(si.Dim()), fmt.Sprint(len(si.SIs)),
				fmt.Sprint(len(si.HotSpots)), sc.Digest()[:16])
		}
		fmt.Print(tb.String())
	case *checkSpec != "":
		f, err := os.Open(*checkSpec)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sc, err := scenario.Decode(f)
		if err != nil {
			fatal(err)
		}
		tr := sc.Trace(4, 1)
		if err := tr.Validate(sc.ISA()); err != nil {
			fatal(fmt.Errorf("expanded trace invalid: %w", err))
		}
		fmt.Printf("%s: ok (%s, %d atoms, %d SIs, digest %s)\n",
			sc.Name(), sc.Kind(), sc.ISA().Dim(), len(sc.ISA().SIs), sc.Digest())
	case *gen:
		var tr *workload.Trace
		if *scen != "" {
			sc, _ := scenario.Find(*scen) // resolveISA verified the name
			tr = sc.Trace(*frames, *seed)
		} else {
			tr = workload.H264(workload.H264Config{
				Frames:            *frames,
				MotionVariability: *motion,
				SceneChangeFrame:  *scene,
				Seed:              *seed,
			})
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.WriteJSON(w); err != nil {
			fatal(err)
		}
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.ReadJSON(f, is)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace:       %s\n", tr.Name)
		fmt.Printf("phases:      %d\n", len(tr.Phases))
		fmt.Printf("executions:  %d\n", tr.TotalExecutions())
		fmt.Printf("sw cycles:   %d (%.1fM)\n", tr.SoftwareCycles(is), float64(tr.SoftwareCycles(is))/1e6)
		tb := &stats.Table{Header: []string{"SI", "executions"}}
		ex := tr.Executions()
		var ids []int
		for si := range ex {
			ids = append(ids, int(si))
		}
		sort.Ints(ids)
		for _, id := range ids {
			tb.AddRow(is.SI(isa.SIID(id)).Name, fmt.Sprint(ex[isa.SIID(id)]))
		}
		fmt.Println()
		fmt.Print(tb.String())
	default:
		fmt.Fprintln(os.Stderr, "rispptrace: need -gen, -info FILE, -check FILE or -scenarios")
		os.Exit(2)
	}
}

// resolveISA picks the ISA traces are generated for / validated against:
// the named scenario's, or the paper's H.264 instruction set.
func resolveISA(name string) (*isa.ISA, error) {
	if name == "" {
		return isa.H264(), nil
	}
	sc, ok := scenario.Find(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (run -scenarios for the library)", name)
	}
	return sc.ISA(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rispptrace:", err)
	os.Exit(1)
}
