// Command risppexplore batch-runs design-space sweeps: schedulers ×
// Atom-Container budgets × workload knobs, expanded from a spec file or
// flags, executed concurrently on a bounded worker pool with result
// caching. Results stream as JSONL (byte-identical at any -j); a human
// summary — best per AC budget, Pareto front, speedups vs a baseline —
// goes to stderr.
//
// Usage:
//
//	risppexplore -sched HEF,ASF,Molen -acs 5-24 -frames 20
//	risppexplore -spec sweep.json -j 8 -timeout 10m -out results.jsonl
//	risppexplore -sched HEF -acs 4-32 -cache .explore-cache   # -resume: only new points simulate
//
// A spec file is the JSON form of explore.Spec, e.g.
//
//	{"schedulers": ["HEF", "Molen"], "acs": [5, 10, 15], "motion": [0, 0.3]}
//
// Instead of exhaustively expanding the grid, -search runs an adaptive
// multi-objective strategy (internal/search) over the same spec: points are
// proposed in seeded deterministic batches, evaluated through the engine
// with every result validated by the reference oracle, and the
// cycles-vs-area Pareto front is maintained incrementally under an
// evaluation budget:
//
//	risppexplore -sched HEF,Molen,software -acs 4-32 -search evolve -budget 100 -seed 1
//	risppexplore -spec sweep.json -search halving -budget 200 -journal run.jsonl
//	risppexplore -replay run.jsonl            # verify a journal byte-for-byte
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"encoding/json"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/profiling"
	"rispp/internal/search"
)

// stopProfiles, once set, flushes active profiles; fatal calls it so that
// -cpuprofile/-trace output survives error exits.
var stopProfiles func() error

func main() {
	var (
		prof      profiling.Config
		specFile  = flag.String("spec", "", "sweep spec file (JSON explore.Spec); dimension flags override its dimensions")
		scheds    = flag.String("sched", "", "comma-separated schedulers (FSFR, ASF, SJF, HEF, Molen, software)")
		acs       = flag.String("acs", "", "Atom-Container budgets: comma list and/or ranges, e.g. 5-24 or 4,8,16")
		frames    = flag.String("frames", "", "comma-separated frame counts")
		seeds     = flag.String("seeds", "", "comma-separated workload PRNG seeds")
		motion    = flag.String("motion", "", "comma-separated motion-variability values (0..1)")
		scenes    = flag.String("scene", "", "comma-separated scene-change frames (0 = none)")
		prefetch  = flag.String("prefetch", "", "comma-separated booleans for the prefetch dimension")
		forecasts = flag.String("seedforecasts", "", "comma-separated booleans for the forecast-seeding dimension")
		workers   = flag.Int("j", 0, "parallel simulations (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "overall deadline (0 = none)")
		cacheDir  = flag.String("cache", "", "content-addressed result cache directory")
		resume    = flag.Bool("resume", true, "reuse completed points from -cache (false: re-simulate and overwrite)")
		out       = flag.String("out", "-", "JSONL output file (- = stdout)")
		summary   = flag.Bool("summary", true, "print the sweep summary to stderr")
		baseline  = flag.String("baseline", "Molen", "baseline scheduler for the speedup table")

		searchName = flag.String("search", "", "adaptive search strategy instead of a full grid sweep: "+strings.Join(search.StrategyNames(), ", "))
		budget     = flag.Int("budget", 0, "evaluation budget for -search (required with -search)")
		seed       = flag.Int64("seed", 1, "PRNG seed for -search (same seed = byte-identical journal)")
		batch      = flag.Int("search-batch", search.DefaultBatchSize, "points proposed per -search round")
		journalOut = flag.String("journal", "", "write the replayable search journal (JSONL) to this file")
		replayFile = flag.String("replay", "", "verify a search journal and print its summary (no simulation)")
		check      = flag.Bool("check", false, "validate every simulated point with the reference oracle (always on under -search)")
	)
	prof.AddFlags(flag.CommandLine)
	flag.Parse()

	if *replayFile != "" {
		f, err := os.Open(*replayFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err := search.Replay(f)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Format())
		return
	}

	var spec explore.Spec
	if *specFile != "" {
		b, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			fatal(fmt.Errorf("spec %s: %w", *specFile, err))
		}
	}
	if *scheds != "" {
		spec.Schedulers = splitList(*scheds)
	}
	if *acs != "" {
		v, err := parseIntRanges(*acs)
		if err != nil {
			fatal(err)
		}
		spec.ACs = v
	}
	if *frames != "" {
		v, err := parseInts(*frames)
		if err != nil {
			fatal(err)
		}
		spec.Frames = v
	}
	if *seeds != "" {
		v, err := parseInt64s(*seeds)
		if err != nil {
			fatal(err)
		}
		spec.Seeds = v
	}
	if *motion != "" {
		v, err := parseFloats(*motion)
		if err != nil {
			fatal(err)
		}
		spec.Motion = v
	}
	if *scenes != "" {
		v, err := parseInts(*scenes)
		if err != nil {
			fatal(err)
		}
		spec.SceneChanges = v
	}
	if *prefetch != "" {
		v, err := parseBools(*prefetch)
		if err != nil {
			fatal(err)
		}
		spec.Prefetch = v
	}
	if *forecasts != "" {
		v, err := parseBools(*forecasts)
		if err != nil {
			fatal(err)
		}
		spec.SeedForecasts = v
	}
	jobs, err := spec.Expand()
	if err != nil {
		fatal(err)
	}
	if len(jobs) == 0 {
		fatal(fmt.Errorf("empty sweep: give -spec or at least one dimension flag"))
	}

	stop, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop

	var cache *explore.Cache
	if *cacheDir != "" {
		cache, err = explore.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache.WriteOnly = !*resume
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *searchName != "" {
		runSearch(ctx, spec, cache, searchFlags{
			strategy: *searchName, seed: *seed, budget: *budget, batch: *batch,
			workers: *workers, journal: *journalOut, summary: *summary,
		}, bw)
		return
	}

	start := time.Now()
	eng := rispp.Explorer(rispp.Config{}, *workers, cache)
	if *check {
		eng = rispp.CheckedExplorer(rispp.Config{}, *workers, cache)
	}
	res, err := eng.Execute(ctx, spec, bw)
	if flushErr := bw.Flush(); err == nil {
		err = flushErr
	}
	if perr := stop(); err == nil {
		err = perr
	}
	stopProfiles = nil
	if *summary && res != nil {
		fmt.Fprintf(os.Stderr, "\n%s\nelapsed: %s\n", res.Format(*baseline), time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		fatal(err)
	}
	if res.Summary.Failed > 0 {
		fatal(fmt.Errorf("%d of %d jobs failed (first: %v)", res.Summary.Failed, res.Summary.Total, res.FirstErr()))
	}
}

type searchFlags struct {
	strategy string
	seed     int64
	budget   int
	batch    int
	workers  int
	journal  string
	summary  bool
}

// runSearch executes the adaptive-search path: the engine is always the
// oracle-checked one, so a guided strategy can never converge onto a
// simulator bug. Evaluated records stream to bw as JSONL (same format as a
// grid sweep); the replayable journal goes to -journal when given.
func runSearch(ctx context.Context, spec explore.Spec, cache *explore.Cache, sf searchFlags, bw *bufio.Writer) {
	start := time.Now()
	var journal io.Writer
	var jf *os.File
	if sf.journal != "" {
		f, err := os.Create(sf.journal)
		if err != nil {
			fatal(err)
		}
		jf = f
		journal = f
	}
	eng := rispp.CheckedExplorer(rispp.Config{}, sf.workers, cache)
	out, err := search.Run(ctx, eng, spec, search.Config{
		Strategy:  sf.strategy,
		Seed:      sf.seed,
		Budget:    sf.budget,
		BatchSize: sf.batch,
		Stream:    bw,
		Journal:   journal,
	})
	if flushErr := bw.Flush(); err == nil {
		err = flushErr
	}
	if jf != nil {
		if cerr := jf.Close(); err == nil {
			err = cerr
		}
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	stopProfiles = nil
	if sf.summary && out != nil {
		fmt.Fprintf(os.Stderr, "\n%selapsed: %s\n", out.Format(), time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		fatal(err)
	}
	if out.Failed > 0 {
		fatal(fmt.Errorf("%d of %d evaluated points failed", out.Failed, out.Evaluated))
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseIntRanges accepts "5-24", "4,8,16" and mixtures of both.
func parseIntRanges(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		if lo, hi, ok := strings.Cut(f, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad range %q", f)
			}
			for n := a; n <= b; n++ {
				out = append(out, n)
			}
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, f := range splitList(s) {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBools(s string) ([]bool, error) {
	var out []bool
	for _, f := range splitList(s) {
		v, err := strconv.ParseBool(f)
		if err != nil {
			return nil, fmt.Errorf("bad bool %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintln(os.Stderr, "risppexplore:", err)
	os.Exit(1)
}
