package rispp

import (
	"context"
	"reflect"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/sim"
)

// TestTrailPersistenceAcrossRunners simulates a worker restart: a second
// Runner sharing the first one's TrailDir must serve repeated points from
// persisted trails — zero fresh recordings — with results identical to a
// cold, persistence-free Runner.
func TestTrailPersistenceAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	pts := []explore.Point{
		{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true},
		{Scheduler: "Molen", NumACs: 10, Frames: 1, SeedForecasts: true},
		{Scheduler: "SJF", NumACs: 5, Frames: 1, SeedForecasts: true},
	}

	first := NewRunner(Config{TrailDir: dir})
	if pdir, err, _, _ := first.TrailPersistence(); pdir != dir || err != nil {
		t.Fatalf("persistence off: dir=%q err=%v", pdir, err)
	}
	for _, p := range pts {
		if err := first.RunPoint(context.Background(), p, sim.Options{}, new(sim.Result)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, loads, saves := first.TrailPersistence(); loads != 0 || saves != int64(len(pts)) {
		t.Fatalf("first runner: loads=%d saves=%d, want 0/%d", loads, saves, len(pts))
	}

	// "Restart": a fresh Runner with an empty in-memory trail set.
	second := NewRunner(Config{TrailDir: dir})
	reference := NewRunner(Config{DisableDelta: true})
	for _, p := range pts {
		got, want := new(sim.Result), new(sim.Result)
		if err := second.RunPoint(context.Background(), p, sim.Options{}, got); err != nil {
			t.Fatal(err)
		}
		if err := reference.RunPoint(context.Background(), p, sim.Options{}, want); err != nil {
			t.Fatal(err)
		}
		if got.TotalCycles != want.TotalCycles || got.StallCycles != want.StallCycles {
			t.Errorf("%s/%d ACs: cycles %d/%d, want %d/%d", p.Scheduler, p.NumACs,
				got.TotalCycles, got.StallCycles, want.TotalCycles, want.StallCycles)
		}
		if !reflect.DeepEqual(got.Executions(), want.Executions()) {
			t.Errorf("%s/%d ACs: Executions differ", p.Scheduler, p.NumACs)
		}
	}
	serves, resumes, records := second.DeltaStats()
	if records != 0 {
		t.Errorf("restarted runner recorded %d trails from power-on, want 0", records)
	}
	if serves != int64(len(pts)) || resumes != 0 {
		t.Errorf("restarted runner: serves=%d resumes=%d, want %d/0", serves, resumes, len(pts))
	}
	if _, _, loads, _ := second.TrailPersistence(); loads != int64(len(pts)) {
		t.Errorf("restarted runner loaded %d trails from disk, want %d", loads, len(pts))
	}

	// A loaded trail joins the in-memory set: the next request for the same
	// point must not touch the disk again.
	if err := second.RunPoint(context.Background(), pts[0], sim.Options{}, new(sim.Result)); err != nil {
		t.Fatal(err)
	}
	if _, _, loads, _ := second.TrailPersistence(); loads != int64(len(pts)) {
		t.Errorf("repeat point re-read the disk store (loads=%d)", loads)
	}
}

// TestTrailPersistenceGates: persistence must stay off when the knobs no
// longer identify the trace (custom workload, or memo off via Bus).
func TestTrailPersistenceGates(t *testing.T) {
	dir := t.TempDir()
	custom := NewRunner(Config{TrailDir: dir, Workload: shortTrace(1)})
	if pdir, _, _, _ := custom.TrailPersistence(); pdir != "" {
		t.Error("persistence on with a custom base workload")
	}
}
