package rispp

import (
	"testing"

	"rispp/internal/isa"
	"rispp/internal/membus"
	"rispp/internal/workload"
)

func shortTrace(frames int) *workload.Trace {
	return workload.H264(workload.H264Config{Frames: frames})
}

func TestRunDefaultsToHEF(t *testing.T) {
	res, err := Run(Config{Workload: shortTrace(2), NumACs: 10, SeedForecasts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "RISPP/HEF" {
		t.Fatalf("default runtime = %q", res.Runtime)
	}
	if res.TotalCycles <= 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestRunUnknownScheduler(t *testing.T) {
	if _, err := Run(Config{Scheduler: "bogus"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunRejectsMismatchedWorkload(t *testing.T) {
	bad := &workload.Trace{Phases: []workload.Phase{{
		HotSpot: isa.HotSpotME,
		Bursts:  []workload.Burst{{SI: 99, Count: 1}},
	}}}
	if _, err := Run(Config{Workload: bad}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestSoftwareConfig(t *testing.T) {
	tr := shortTrace(1)
	res, err := Run(Config{Scheduler: "software", Workload: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != tr.SoftwareCycles(isa.H264()) {
		t.Fatalf("software run = %d cycles", res.TotalCycles)
	}
}

func TestMolenConfig(t *testing.T) {
	res, err := Run(Config{Scheduler: "Molen", NumACs: 10, Workload: shortTrace(2), SeedForecasts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "Molen" {
		t.Fatalf("runtime = %q", res.Runtime)
	}
}

func TestAllSchedulersBeatSoftware(t *testing.T) {
	tr := shortTrace(3)
	sw := tr.SoftwareCycles(isa.H264())
	for _, s := range append([]string{"Molen"}, Schedulers...) {
		res, err := Run(Config{Scheduler: s, NumACs: 12, Workload: tr, SeedForecasts: true})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.TotalCycles >= sw {
			t.Errorf("%s with 12 ACs (%d) not faster than software (%d)", s, res.TotalCycles, sw)
		}
	}
}

func TestRunsAreReproducible(t *testing.T) {
	cfg := Config{Scheduler: "HEF", NumACs: 9, Workload: shortTrace(2), SeedForecasts: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("non-deterministic: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
}

func TestSweep(t *testing.T) {
	out, err := Sweep(Config{Workload: shortTrace(2), SeedForecasts: true},
		[]string{"HEF", "Molen"}, []int{6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out["HEF"]) != 2 {
		t.Fatalf("sweep shape = %v", out)
	}
	if out["HEF"][12] >= out["Molen"][12] {
		t.Errorf("HEF (%d) not faster than Molen (%d) at 12 ACs", out["HEF"][12], out["Molen"][12])
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	if _, err := Sweep(Config{Workload: shortTrace(1)}, []string{"nope"}, []int{4}); err == nil {
		t.Fatal("sweep swallowed scheduler error")
	}
}

func TestCollectOptions(t *testing.T) {
	cfg := Config{Scheduler: "HEF", NumACs: 10, Workload: shortTrace(1), SeedForecasts: true}
	cfg.Collect.HistogramBucket = 100_000
	cfg.Collect.Timeline = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram == nil || res.Timeline == nil {
		t.Fatal("collection options ignored")
	}
}

func TestNewRuntimeExposesManager(t *testing.T) {
	rt, err := NewRuntime(Config{Scheduler: "ASF", NumACs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "RISPP/ASF" {
		t.Fatalf("Name = %q", rt.Name())
	}
}

func TestBusContentionConfig(t *testing.T) {
	tr := shortTrace(2)
	base, err := Run(Config{Scheduler: "HEF", NumACs: 10, Workload: tr, SeedForecasts: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(Config{Scheduler: "HEF", NumACs: 10, Workload: tr, SeedForecasts: true,
		Bus: &membus.Config{Policy: membus.CPUPriority, CPULoad: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalCycles <= base.TotalCycles {
		t.Fatalf("bus contention did not slow the system: %d vs %d", loaded.TotalCycles, base.TotalCycles)
	}
}
