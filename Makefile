# RISPP run-time system reproduction — common workflows.

GO ?= go

.PHONY: all build test short race bench bench-paper bench-check bench-baseline bench-json prof-diff cover-check verify-oracle fuzz search-smoke soak fabric-smoke lint serve figures verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the full 140-frame integration sweep.
short:
	$(GO) test -short ./...

# Race-detector run (what CI runs).
race:
	$(GO) test -race -short ./...

# Hot-path micro-benchmarks (simulator + exploration engine), 5 repeats
# for benchstat; the numbers tracked in EXPERIMENTS.md come from here.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=5 ./internal/sim ./internal/explore

# Regenerate every paper table/figure as testing.B benchmarks.
bench-paper:
	$(GO) test -bench=. -benchmem ./...

# Bench-regression gate (what the bench-regression CI job runs): minimum
# of 5 repeats vs the committed baseline; fails on >25% ns/op regression,
# any allocs/op increase, or a baselined benchmark missing from the run.
# BENCH_TOLERANCE overrides the 25%.
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkRun -benchtime 100x -benchmem -count 5 ./internal/sim > bench_check.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSweep$$|BenchmarkSweepResim$$' -benchtime 20x -benchmem -count 5 . >> bench_check.txt
	$(GO) test -run '^$$' -bench BenchmarkSearchDriver -benchtime 20x -benchmem -count 5 ./internal/search >> bench_check.txt
	$(GO) test -run '^$$' -bench BenchmarkServeSimulate -benchtime 200x -benchmem -count 5 ./internal/serve >> bench_check.txt
	$(GO) test -run '^$$' -bench BenchmarkFabric -benchtime 5x -benchmem -count 5 ./internal/fabric >> bench_check.txt
	$(GO) run ./scripts/benchcheck -baseline BENCH_baseline.json < bench_check.txt

# Re-measure the bench baseline on this machine (commit the result).
bench-baseline:
	$(GO) test -run '^$$' -bench BenchmarkRun -benchtime 100x -benchmem -count 5 ./internal/sim > bench_baseline.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSweep$$|BenchmarkSweepResim$$' -benchtime 20x -benchmem -count 5 . >> bench_baseline.txt
	$(GO) test -run '^$$' -bench BenchmarkSearchDriver -benchtime 20x -benchmem -count 5 ./internal/search >> bench_baseline.txt
	$(GO) test -run '^$$' -bench BenchmarkServeSimulate -benchtime 200x -benchmem -count 5 ./internal/serve >> bench_baseline.txt
	$(GO) test -run '^$$' -bench BenchmarkFabric -benchtime 5x -benchmem -count 5 ./internal/fabric >> bench_baseline.txt
	$(GO) run ./scripts/benchcheck -update -baseline BENCH_baseline.json < bench_baseline.txt
	rm -f bench_baseline.txt

# Snapshot the current hot-path numbers — the simulator, the grouped
# sweep, and the fabric sweep (BenchmarkFabricSweep/workers=N is the
# sharded-vs-serialized speedup table; BenchmarkFabricOverhead the
# coordinator tax) — into BENCH_pr10.json, same format and reduction
# (min of 5) as BENCH_baseline.json, for before/after tables.
bench-json:
	$(GO) test -run '^$$' -bench BenchmarkRun -benchtime 100x -benchmem -count 5 ./internal/sim > bench_json.txt
	$(GO) test -run '^$$' -bench BenchmarkSweep -benchtime 20x -benchmem -count 5 . >> bench_json.txt
	$(GO) test -run '^$$' -bench BenchmarkFabric -benchtime 5x -benchmem -count 5 ./internal/fabric >> bench_json.txt
	$(GO) run ./scripts/benchcheck -update -baseline BENCH_pr10.json < bench_json.txt
	rm -f bench_json.txt

# Before/after CPU+heap profile delta for one named benchmark. First run
# records the "before" snapshot (do this on the base commit), the second —
# after applying the change — prints top-N cumulative delta tables.
# Usage: make prof-diff PROF_BENCH=BenchmarkRunHEF PROF_PKG=./internal/sim
# Add PROF_RESET=1 to discard a stale "before" and start over.
PROF_BENCH ?= BenchmarkRunHEF
PROF_PKG ?= ./internal/sim
PROF_COUNT ?= 5
prof-diff:
	$(GO) run ./scripts/profdiff -bench '$(PROF_BENCH)' -pkg '$(PROF_PKG)' -count $(PROF_COUNT) $(if $(PROF_RESET),-reset,)

# Coverage floor gate (what the coverage CI job runs).
cover-check:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) run ./scripts/covercheck -profile cover.out -floor 70

# Cross-check the compiled simulator against the reference interpreter:
# 1,500 generated (hardware, workload, system, ACs) triples, 540 generated
# scenario triples (multi-app merged ISAs, control-flow branch models,
# content-driven encodes), every shipped library scenario, and the full
# 140-frame H.264 trace under all six run-time systems. A divergence
# fails with a minimal shrunk reproducer (see EXPERIMENTS.md).
verify-oracle:
	$(GO) test -run 'TestCrossCheck' -v ./internal/oracle

# Adaptive-search smoke (what the search-smoke CI job runs): every
# strategy gets a 30-point budget over a small real-simulator space, runs
# twice, and the two journals must be byte-identical; each journal must
# then replay clean (`risppexplore -replay` re-derives the Pareto front
# from the eval lines and compares byte-for-byte).
search-smoke:
	@rm -rf search_smoke && mkdir -p search_smoke
	@set -e; for s in random halving evolve; do \
		echo "== $$s =="; \
		$(GO) run ./cmd/risppexplore -sched HEF,Molen,ASF,software -acs 4-20 -frames 2 \
			-search $$s -budget 30 -seed 42 -journal search_smoke/$$s.jsonl -out /dev/null -summary=false; \
		$(GO) run ./cmd/risppexplore -sched HEF,Molen,ASF,software -acs 4-20 -frames 2 \
			-search $$s -budget 30 -seed 42 -journal search_smoke/$$s.2.jsonl -out /dev/null -summary=false; \
		cmp search_smoke/$$s.jsonl search_smoke/$$s.2.jsonl; \
		$(GO) run ./cmd/risppexplore -replay search_smoke/$$s.jsonl; \
	done
	@rm -rf search_smoke

# Multi-tenant load soak with SLO assertions (what the CI soak job runs):
# spawns risppserve in-process, drives the seeded two-tenant mix, fails on
# p99/shed/5xx/fairness violations. SOAK_PROFILE=long for the nightly one.
SOAK_PROFILE ?= quick
soak:
	$(GO) run ./cmd/risppload -profile $(SOAK_PROFILE) -report soak-report.json -pprof-dir soak-pprof

# Distributed-sweep smoke (what the CI fabric-smoke job runs): a 3-worker
# in-process fleet with one worker hard-killed mid-sweep; fails unless the
# merged stream is byte-identical to a single process and the warm re-run
# simulates zero points fleet-wide.
fabric-smoke:
	$(GO) run ./cmd/risppload -fleet -fleet-size 3 -report fleet-report.json

# Native fuzzing beyond the committed seed corpora (testdata/fuzz/).
# FUZZTIME overrides the per-target budget.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzRunCompiled$$' -fuzztime $(FUZZTIME) ./internal/oracle
	$(GO) test -run '^$$' -fuzz '^FuzzServeSimulate$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzScenarioDecode$$' -fuzztime $(FUZZTIME) ./internal/scenario

# Lint gate; needs golangci-lint on PATH (CI installs it via the action).
lint:
	golangci-lint run

# Run the simulation service on :8264.
serve:
	$(GO) run ./cmd/risppserve

# Text + SVG renderings of all paper artifacts into ./figures.
figures:
	$(GO) run ./cmd/risppbench -svg figures | tee figures/report.txt

# The final artifacts the repository ships with.
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf figures search_smoke test_output.txt bench_output.txt bench_check.txt bench_baseline.txt bench_json.txt cover.out cpu.pprof mem.pprof .profdiff soak-report.json soak-pprof fleet-report.json
