# RISPP run-time system reproduction — common workflows.

GO ?= go

.PHONY: all build test short race bench figures verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the full 140-frame integration sweep.
short:
	$(GO) test -short ./...

# Race-detector run (what CI runs).
race:
	$(GO) test -race -short ./...

# Regenerate every paper table/figure as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Text + SVG renderings of all paper artifacts into ./figures.
figures:
	$(GO) run ./cmd/risppbench -svg figures | tee figures/report.txt

# The final artifacts the repository ships with.
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf figures test_output.txt bench_output.txt
