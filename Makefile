# RISPP run-time system reproduction — common workflows.

GO ?= go

.PHONY: all build test short race bench bench-paper figures verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the full 140-frame integration sweep.
short:
	$(GO) test -short ./...

# Race-detector run (what CI runs).
race:
	$(GO) test -race -short ./...

# Hot-path micro-benchmarks (simulator + exploration engine), 5 repeats
# for benchstat; the numbers tracked in EXPERIMENTS.md come from here.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=5 ./internal/sim ./internal/explore

# Regenerate every paper table/figure as testing.B benchmarks.
bench-paper:
	$(GO) test -bench=. -benchmem ./...

# Text + SVG renderings of all paper artifacts into ./figures.
figures:
	$(GO) run ./cmd/risppbench -svg figures | tee figures/report.txt

# The final artifacts the repository ships with.
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf figures test_output.txt bench_output.txt
