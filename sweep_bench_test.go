// Benchmarks and equivalence tests of the sweep fast path introduced with
// the runtime pool: BenchmarkSweep drives a paper-grid slice (all six
// run-time systems × several AC budgets) through the grouped single-pass
// engine path, BenchmarkSweepPerPoint drives the identical grid through the
// pre-existing one-runtime-per-job path, so the two ns/op values measure
// exactly the batching + pooling win.
package rispp

import (
	"context"
	"reflect"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/sched"
	"rispp/internal/sim"
)

// sweepSpec is a slice of the paper's Figure 7 grid: every run-time system
// (four RISPP schedulers, the Molen baseline, plain software) over four
// Atom-Container budgets on a one-frame trace. Small enough for -count=5
// baselining, large enough that per-point construction cost dominates the
// unpooled path.
func sweepSpec() explore.Spec {
	return explore.Spec{
		Schedulers:    append(append([]string{}, sched.Names...), "Molen", "software"),
		ACs:           []int{5, 10, 15, 24},
		Frames:        []int{1},
		SeedForecasts: []bool{true},
	}
}

func executeSweep(b *testing.B, eng *explore.Engine) *explore.Result {
	res, err := eng.Execute(context.Background(), sweepSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSweep measures the full sweep stack: one shared Runner with the
// trace memo, the runtime pool, and delta-resimulation trails. The warmup
// sweep records one trail per budget-axis class, so every point of the
// timed iterations is served from a trail without simulating — the
// steady-state cost of re-evaluating an already-explored grid. Single
// worker, so ns/op is comparable to BenchmarkSweepPerPoint rather than a
// measure of parallelism.
func BenchmarkSweep(b *testing.B) {
	rn := NewRunner(Config{})
	eng := &explore.Engine{Workers: 1, Run: rn.EngineRun(), RunSet: rn.EngineRunSet()}
	executeSweep(b, eng) // warm the trace memo and record the trails
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		executeSweep(b, eng)
	}
	b.StopTimer()
	serves, resumes, records := rn.DeltaStats()
	b.ReportMetric(float64(serves)/float64(serves+resumes+records), "delta-serve-rate")
}

// BenchmarkSweepResim is BenchmarkSweep with delta-resimulation disabled:
// the pooled-runtime, batched single-pass walk that actually simulates
// every point each iteration. The gap to BenchmarkSweep is what the trail
// layer buys on repeated grids; the gap to BenchmarkSweepPerPoint is what
// pooling+batching buy on cold ones.
func BenchmarkSweepResim(b *testing.B) {
	rn := NewRunner(Config{DisableDelta: true})
	eng := &explore.Engine{Workers: 1, Run: rn.EngineRun(), RunSet: rn.EngineRunSet()}
	executeSweep(b, eng) // warm the trace memo and the runtime pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		executeSweep(b, eng)
	}
	b.StopTimer()
	hits, misses := rn.RuntimePoolStats()
	b.ReportMetric(float64(hits)/float64(hits+misses), "pool-hit-rate")
}

// BenchmarkSweepPerPoint measures the same grid through the pre-PR path:
// no RunSet batching, and a fresh Runner per iteration so every point pays
// runtime construction and its own walk over the compiled trace. (Each
// grid point occurs once per iteration, so the fresh Runner's pool never
// hits — exactly the pre-pool behavior; the one-frame trace compile the
// fresh memo repays per iteration is noise against 24 simulations.)
func BenchmarkSweepPerPoint(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rn := NewRunner(Config{})
		eng := &explore.Engine{Workers: 1, Run: rn.EngineRun()}
		executeSweep(b, eng)
	}
}

// TestSweepGroupedMatchesPerPoint pins the tentpole's behavioral
// invisibility at the engine level: the grouped single-pass path must
// produce record-identical output to the per-point path.
func TestSweepGroupedMatchesPerPoint(t *testing.T) {
	spec := sweepSpec()
	per := NewRunner(Config{})
	perEng := &explore.Engine{Workers: 2, Run: per.EngineRun()}
	want, err := perEng.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	grp := NewRunner(Config{})
	grpEng := &explore.Engine{Workers: 2, Run: grp.EngineRun(), RunSet: grp.EngineRunSet()}
	got, err := grpEng.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Errorf("grouped sweep records differ from per-point records:\nwant %+v\ngot  %+v", want.Records, got.Records)
	}
}

// TestRunPointSetMatchesRunPoint checks the Runner-level contract: a batch
// run yields field-exact the same Results as point-by-point runs.
func TestRunPointSetMatchesRunPoint(t *testing.T) {
	rn := NewRunner(Config{})
	ps := []explore.Point{
		{Scheduler: "HEF", NumACs: 10, Frames: 2, SeedForecasts: true},
		{Scheduler: "FSFR", NumACs: 5, Frames: 2, SeedForecasts: true},
		{Scheduler: "Molen", NumACs: 10, Frames: 2, SeedForecasts: true},
		{Scheduler: "software", Frames: 2},
	}
	collect := sim.Options{HistogramBucket: 100_000, Timeline: true}
	want := make([]*sim.Result, len(ps))
	for i, p := range ps {
		want[i] = new(sim.Result)
		if err := rn.RunPoint(context.Background(), p, collect, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*sim.Result, len(ps))
	for i := range got {
		got[i] = new(sim.Result)
	}
	if err := rn.RunPointSet(context.Background(), ps, collect, got); err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("point %s: RunPointSet result differs from RunPoint", ps[i].Key())
		}
	}
}

func TestRunPointSetRejectsMixedWorkloads(t *testing.T) {
	rn := NewRunner(Config{})
	ps := []explore.Point{
		{Scheduler: "HEF", NumACs: 10, Frames: 1},
		{Scheduler: "ASF", NumACs: 10, Frames: 2},
	}
	res := []*sim.Result{new(sim.Result), new(sim.Result)}
	if err := rn.RunPointSet(context.Background(), ps, sim.Options{}, res); err == nil {
		t.Fatal("RunPointSet accepted points with different workload knobs")
	}
}

// TestRuntimePoolReuse pins the pool mechanics: the second identical run
// must be a hit, and a Bus-configured Runner must bypass the pool entirely.
func TestRuntimePoolReuse(t *testing.T) {
	// Delta-resimulation would serve the repeat runs without touching the
	// pool; disable it so the pool mechanics stay observable.
	rn := NewRunner(Config{DisableDelta: true})
	p := explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true}
	res := rn.GetResult()
	defer rn.PutResult(res)
	for i := 0; i < 3; i++ {
		if err := rn.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := rn.RuntimePoolStats()
	if misses != 1 || hits != 2 {
		t.Errorf("pool stats after 3 identical runs: hits=%d misses=%d, want 2/1", hits, misses)
	}
}
