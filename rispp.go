// Package rispp is the public API of the RISPP run-time-system library: a
// reproduction of "Run-time System for an Extensible Embedded Processor
// with Dynamic Instruction Set" (Bauer, Shafique, Kreutz, Henkel — DATE
// 2008).
//
// A RISPP processor executes Special Instructions (SIs) that are composed
// at run time from reconfigurable data paths (Atoms) loaded into Atom
// Containers. The library bundles the formal Molecule model, the H.264
// dynamic instruction set of the paper's Table 1, the online monitor, the
// Molecule selection, the Special Instruction Scheduler (FSFR, ASF, SJF and
// the paper's HEF), a Molen-like baseline, and a cycle-level simulator.
//
// Quick start:
//
//	res, err := rispp.Run(rispp.Config{Scheduler: "HEF", NumACs: 10})
//	if err != nil { ... }
//	fmt.Println(res.TotalCycles)
//
// See examples/ for complete programs and bench_test.go for the harness
// regenerating every table and figure of the paper.
package rispp

import (
	"fmt"

	"rispp/internal/bitstream"
	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/membus"
	"rispp/internal/molen"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// Schedulers lists the SI-Scheduler names accepted by Config.Scheduler, in
// the paper's order. Additionally, Config.Scheduler accepts "Molen" (the
// baseline reconfigurable system) and "software" (plain base processor).
var Schedulers = sched.Names

// Config describes one simulated system + workload combination.
type Config struct {
	// ISA is the dynamic instruction set; nil selects the paper's H.264
	// encoder ISA (Table 1).
	ISA *isa.ISA
	// Workload is the trace to execute; nil selects the paper's 140-frame
	// CIF H.264 encode.
	Workload *workload.Trace
	// Scheduler selects the run-time system: one of Schedulers for RISPP
	// ("HEF" if empty), "Molen" for the baseline, or "software".
	Scheduler string
	// NumACs is the number of Atom Containers (ignored for "software").
	NumACs int

	// SeedForecasts, when true, seeds the execution-count forecasts from
	// the first occurrence of each hot spot in the trace — the design-time
	// estimation of the paper's toolchain. Almost always desirable.
	SeedForecasts bool
	// Eviction selects the Atom Container eviction policy (RISPP only).
	Eviction reconfig.EvictionPolicy
	// MonitorShift sets the forecast smoothing α = 2^-shift.
	MonitorShift uint
	// Timing overrides the reconfiguration timing calibration (zero value:
	// 100 MHz clock, avg Atom reload 874.03 µs).
	Timing reconfig.Timing
	// ExhaustiveSelection switches RISPP to the exponential reference
	// Molecule selection (ablation; small SI sets per hot spot only).
	ExhaustiveSelection bool
	// Bitstreams optionally drives the reconfiguration port from generated
	// partial-bitstream images (see internal/bitstream).
	Bitstreams *bitstream.Repository
	// Prefetch enables reconfiguration prefetching for the predicted next
	// hot spot while the port would otherwise idle (extension, RISPP only).
	Prefetch bool
	// Bus, when non-nil, models contention on the shared memory bus: Atom
	// reload times stretch by the DMA's squeezed share and the trace's glue
	// cycles by the core's slowdown (see internal/membus).
	Bus *membus.Config

	// Collect controls measurement artifacts (histograms, timelines).
	Collect sim.Options
}

func (c *Config) setDefaults() {
	if c.ISA == nil {
		c.ISA = isa.H264()
	}
	if c.Workload == nil {
		c.Workload = workload.H264(workload.H264Config{})
	}
	if c.Scheduler == "" {
		c.Scheduler = "HEF"
	}
	if c.Bus != nil {
		if c.Timing == (reconfig.Timing{}) {
			c.Timing = reconfig.DefaultTiming()
		}
		c.Timing = c.Bus.Timing(c.Timing)
		c.Workload = c.Bus.ApplyToTrace(c.Workload)
		c.Bus = nil // applied
	}
}

// NewRuntime builds the runtime described by the config without running it;
// useful for custom simulation loops.
func NewRuntime(cfg Config) (sim.Runtime, error) {
	cfg.setDefaults()
	switch cfg.Scheduler {
	case "software":
		return sim.Software(cfg.ISA), nil
	case "Molen", "molen":
		rt := molen.New(molen.Config{
			ISA:          cfg.ISA,
			NumACs:       cfg.NumACs,
			Timing:       cfg.Timing,
			MonitorShift: cfg.MonitorShift,
		})
		if cfg.SeedForecasts {
			rt.SeedFromTrace(cfg.Workload)
		}
		return rt, nil
	default:
		s, err := sched.New(cfg.Scheduler)
		if err != nil {
			return nil, fmt.Errorf("rispp: %w", err)
		}
		mgr := core.NewManager(core.Config{
			ISA:                 cfg.ISA,
			NumACs:              cfg.NumACs,
			Scheduler:           s,
			Timing:              cfg.Timing,
			Eviction:            cfg.Eviction,
			MonitorShift:        cfg.MonitorShift,
			ExhaustiveSelection: cfg.ExhaustiveSelection,
			Bitstreams:          cfg.Bitstreams,
			Prefetch:            cfg.Prefetch,
		})
		if cfg.SeedForecasts {
			mgr.SeedFromTrace(cfg.Workload)
		}
		return mgr, nil
	}
}

// Run simulates the configured system on the configured workload.
func Run(cfg Config) (*sim.Result, error) {
	cfg.setDefaults()
	if err := cfg.Workload.Validate(cfg.ISA); err != nil {
		return nil, err
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg.Workload, cfg.ISA, rt, cfg.Collect)
}

// SweepPoint is one cell of a scheduler × #ACs sweep.
type SweepPoint struct {
	Scheduler   string
	NumACs      int
	TotalCycles int64
}

// Sweep runs the given schedulers over a range of Atom Container counts
// (the Figure 7 / Table 2 experiment) and returns results indexed
// [scheduler][numACs].
func Sweep(base Config, schedulers []string, acs []int) (map[string]map[int]int64, error) {
	out := make(map[string]map[int]int64, len(schedulers))
	for _, s := range schedulers {
		out[s] = make(map[int]int64, len(acs))
		for _, n := range acs {
			cfg := base
			cfg.Scheduler = s
			cfg.NumACs = n
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("rispp: sweep %s/%d ACs: %w", s, n, err)
			}
			out[s][n] = res.TotalCycles
		}
	}
	return out, nil
}
