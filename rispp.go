// Package rispp is the public API of the RISPP run-time-system library: a
// reproduction of "Run-time System for an Extensible Embedded Processor
// with Dynamic Instruction Set" (Bauer, Shafique, Kreutz, Henkel — DATE
// 2008).
//
// A RISPP processor executes Special Instructions (SIs) that are composed
// at run time from reconfigurable data paths (Atoms) loaded into Atom
// Containers. The library bundles the formal Molecule model, the H.264
// dynamic instruction set of the paper's Table 1, the online monitor, the
// Molecule selection, the Special Instruction Scheduler (FSFR, ASF, SJF and
// the paper's HEF), a Molen-like baseline, and a cycle-level simulator.
//
// Quick start:
//
//	res, err := rispp.Run(rispp.Config{Scheduler: "HEF", NumACs: 10})
//	if err != nil { ... }
//	fmt.Println(res.TotalCycles)
//
// See examples/ for complete programs and bench_test.go for the harness
// regenerating every table and figure of the paper.
package rispp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rispp/internal/bitstream"
	"rispp/internal/core"
	"rispp/internal/explore"
	"rispp/internal/isa"
	"rispp/internal/membus"
	"rispp/internal/molen"
	"rispp/internal/oracle"
	"rispp/internal/reconfig"
	"rispp/internal/scenario"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// Schedulers lists the SI-Scheduler names accepted by Config.Scheduler, in
// the paper's order. Additionally, Config.Scheduler accepts "Molen" (the
// baseline reconfigurable system) and "software" (plain base processor).
var Schedulers = sched.Names

// Config describes one simulated system + workload combination.
type Config struct {
	// ISA is the dynamic instruction set; nil selects the paper's H.264
	// encoder ISA (Table 1).
	ISA *isa.ISA
	// Workload is the trace to execute; nil selects the paper's 140-frame
	// CIF H.264 encode.
	Workload *workload.Trace
	// Scheduler selects the run-time system: one of Schedulers for RISPP
	// ("HEF" if empty), "Molen" for the baseline, or "software".
	Scheduler string
	// NumACs is the number of Atom Containers (ignored for "software").
	NumACs int

	// SeedForecasts, when true, seeds the execution-count forecasts from
	// the first occurrence of each hot spot in the trace — the design-time
	// estimation of the paper's toolchain. Almost always desirable.
	SeedForecasts bool
	// Eviction selects the Atom Container eviction policy (RISPP only).
	Eviction reconfig.EvictionPolicy
	// MonitorShift sets the forecast smoothing α = 2^-shift.
	MonitorShift uint
	// Timing overrides the reconfiguration timing calibration (zero value:
	// 100 MHz clock, avg Atom reload 874.03 µs).
	Timing reconfig.Timing
	// ExhaustiveSelection switches RISPP to the exponential reference
	// Molecule selection (ablation; small SI sets per hot spot only).
	ExhaustiveSelection bool
	// Bitstreams optionally drives the reconfiguration port from generated
	// partial-bitstream images (see internal/bitstream).
	Bitstreams *bitstream.Repository
	// Prefetch enables reconfiguration prefetching for the predicted next
	// hot spot while the port would otherwise idle (extension, RISPP only).
	Prefetch bool
	// Bus, when non-nil, models contention on the shared memory bus: Atom
	// reload times stretch by the DMA's squeezed share and the trace's glue
	// cycles by the core's slowdown (see internal/membus).
	Bus *membus.Config

	// Collect controls measurement artifacts (histograms, timelines).
	Collect sim.Options

	// DisableDelta turns off delta-resimulation in Runner-based paths
	// (RunPoint/RunPointSet/Explorer): every point then simulates from
	// power-on even when a recorded checkpoint trail could serve it.
	// Results are identical either way; the knob exists for benchmarking
	// the raw simulator and for tests that pin runtime-pool behavior.
	DisableDelta bool

	// TrailDir, when non-empty, persists completed delta-resimulation
	// trails (their serve-only final rung, see sim.TrailStore) in this
	// directory, so repeated configurations full-skip across process
	// restarts — typically a "trails" directory next to the explore result
	// cache. Like that cache, the directory must be exclusive to one base
	// configuration: the persisted key covers the per-point knobs
	// (scheduler, forecast seeding, prefetch, workload), not the platform
	// calibration fields of this struct. Ignored when the runner's memo is
	// off (Bus set) or a custom base Workload is installed — the knobs then
	// no longer identify the trace.
	TrailDir string
}

func (c *Config) setDefaults() {
	if c.ISA == nil {
		c.ISA = isa.H264()
	}
	if c.Workload == nil {
		c.Workload = workload.H264(workload.H264Config{})
	}
	if c.Scheduler == "" {
		c.Scheduler = "HEF"
	}
	if c.Bus != nil {
		if c.Timing == (reconfig.Timing{}) {
			c.Timing = reconfig.DefaultTiming()
		}
		c.Timing = c.Bus.Timing(c.Timing)
		c.Workload = c.Bus.ApplyToTrace(c.Workload)
		c.Bus = nil // applied
	}
}

// NewRuntime builds the runtime described by the config without running it;
// useful for custom simulation loops.
func NewRuntime(cfg Config) (sim.Runtime, error) {
	cfg.setDefaults()
	switch cfg.Scheduler {
	case "software":
		return sim.Software(cfg.ISA), nil
	case "Molen", "molen":
		rt := molen.New(molen.Config{
			ISA:          cfg.ISA,
			NumACs:       cfg.NumACs,
			Timing:       cfg.Timing,
			MonitorShift: cfg.MonitorShift,
		})
		if cfg.SeedForecasts {
			rt.SeedFromTrace(cfg.Workload)
		}
		return rt, nil
	default:
		s, err := sched.New(cfg.Scheduler)
		if err != nil {
			return nil, fmt.Errorf("rispp: %w", err)
		}
		mgr := core.NewManager(core.Config{
			ISA:                 cfg.ISA,
			NumACs:              cfg.NumACs,
			Scheduler:           s,
			Timing:              cfg.Timing,
			Eviction:            cfg.Eviction,
			MonitorShift:        cfg.MonitorShift,
			ExhaustiveSelection: cfg.ExhaustiveSelection,
			Bitstreams:          cfg.Bitstreams,
			Prefetch:            cfg.Prefetch,
		})
		if cfg.SeedForecasts {
			mgr.SeedFromTrace(cfg.Workload)
		}
		return mgr, nil
	}
}

// Run simulates the configured system on the configured workload.
func Run(cfg Config) (*sim.Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation and deadline support: the simulator
// checks the context between events (Atom-load completions and phase
// boundaries), so even a billions-of-cycles run stops promptly.
func RunContext(ctx context.Context, cfg Config) (*sim.Result, error) {
	cfg.setDefaults()
	rt, err := NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	// sim.RunContext compiles the trace, which validates it against the ISA.
	return sim.RunContext(ctx, cfg.Workload, cfg.ISA, rt, cfg.Collect)
}

// SweepPoint is one cell of a scheduler × #ACs sweep.
type SweepPoint struct {
	Scheduler   string
	NumACs      int
	TotalCycles int64
}

// Runner materializes explore.Points as full simulation runs over a base
// Config, sharing per-run scratch across calls: traces are compiled once
// per distinct workload-knob combination (the compiled form is immutable
// and race-free to share) and sim.Result buffers are recycled through a
// sync.Pool, so a steady stream of points re-pays neither trace lowering
// nor result allocation per run. A Runner is safe for concurrent use; both
// the exploration engine (Explorer) and the HTTP serving layer
// (internal/serve) run their points through one.
//
// When base.Workload is nil, the point's workload knobs (frames, seed,
// motion variability, scene change) build the H.264 trace — or, when the
// point names a scenario, the scenario generator of internal/scenario
// builds the trace and the run executes under that scenario's (possibly
// merged multi-app) ISA. A non-nil base.Workload is used verbatim for
// every point and excludes scenario points — in that case do not share an
// explore.Cache across different traces, since the point key only
// describes the knobs.
// Runtimes are pooled too: runtime construction allocates the full arena
// set (monitor tables, Atom Container array, scheduler scratch), while a
// reused runtime is Reset in place by the simulator and re-runs without
// allocating. The pool is keyed by everything that distinguishes one
// runtime build from another under a fixed base config — scheduler, #ACs,
// forecast seeding, prefetching, and the workload knobs (forecast seeds
// derive from the trace).
type Runner struct {
	base     Config
	memo     bool      // trace memo + runtime pool are sound (no Bus rewrite)
	results  sync.Pool // *sim.Result, reused across runs
	compiled sync.Map  // workKey → *workload.Compiled

	runtimes             sync.Map // runtimeKey → *runtimePool
	poolHits, poolMisses atomic.Int64

	// trails holds completed delta-resimulation trails (sim.Trail) keyed by
	// everything that distinguishes runs EXCEPT the container budget — the
	// axis trails transfer across. Only complete trails are stored, and a
	// complete trail is immutable, so lookups are lock-free reads.
	trails                               sync.Map // trailKey → *trailSet
	deltaServes, deltaResumes, deltaRecs atomic.Int64

	// trailStore, when non-nil, persists completed trails' final rungs
	// (Config.TrailDir) and is consulted when no in-memory trail serves —
	// the warm-start path across process restarts.
	trailStore             *sim.TrailStore
	trailStoreErr          error
	trailLoads, trailSaves atomic.Int64
}

// workKey identifies a distinct workload under a fixed base config: which
// generator produced the trace (the H.264 generator when scenario is
// empty, the named scenario of internal/scenario otherwise) and the knobs
// it ran with. Scenario traces use only the Frames and Seed knobs; the
// H.264-only knobs stay zero in their keys.
type workKey struct {
	scenario string
	knobs    workload.H264Config
}

// trailKey is runtimeKey minus the budget axis: two runs with equal trail
// keys differ at most in NumACs, which is exactly the difference
// delta-resimulation bridges.
type trailKey struct {
	scheduler     string
	seedForecasts bool
	prefetch      bool
	work          workKey
}

// trailSet holds the recorded trails of one budget-axis class. The mutex
// guards the map only; the trails themselves are immutable once stored.
type trailSet struct {
	mu       sync.Mutex
	byBudget map[int]*sim.Trail
}

// candidates appends the trails worth consulting for budget: the exact
// match first (always a full skip), then every other recorded budget.
func (ts *trailSet) candidates(budget int, dst []*sim.Trail) []*sim.Trail {
	ts.mu.Lock()
	if t := ts.byBudget[budget]; t != nil {
		dst = append(dst, t)
	}
	for b, t := range ts.byBudget {
		if b != budget {
			dst = append(dst, t)
		}
	}
	ts.mu.Unlock()
	return dst
}

// store records the complete trail for budget, first-wins: under concurrent
// recording of the same point the earliest trail sticks and later ones are
// dropped (all are field-exact equivalent).
func (ts *trailSet) store(budget int, t *sim.Trail) {
	ts.mu.Lock()
	if _, ok := ts.byBudget[budget]; !ok {
		ts.byBudget[budget] = t
	}
	ts.mu.Unlock()
}

// runtimePool is a per-key free list of idle runtimes. Unlike sync.Pool it
// holds strong references: a runtime arena is a deliberate, bounded cache
// (the list can never exceed the peak number of concurrent runs per key),
// and dropping it on every GC — which the construction garbage of the
// resulting misses itself triggers — would defeat the cache exactly when
// it is needed.
type runtimePool struct {
	mu   sync.Mutex
	free []sim.Runtime
}

// maxPooledPerKey bounds each free list as a safety net; in practice the
// list size equals the peak concurrency on the key (a handful).
const maxPooledPerKey = 32

func (p *runtimePool) get() (sim.Runtime, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		rt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return rt, true
	}
	return nil, false
}

func (p *runtimePool) put(rt sim.Runtime) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < maxPooledPerKey {
		p.free = append(p.free, rt)
	}
}

// runtimeKey identifies a pool of interchangeable runtimes: two builds with
// equal keys (under one Runner, whose remaining config fields are fixed)
// are behaviorally identical after Reset.
type runtimeKey struct {
	scheduler     string
	numACs        int
	seedForecasts bool
	prefetch      bool
	work          workKey
}

// NewRunner builds a Runner over the base config. Trace memoization and the
// runtime pool are disabled when base.Bus is set, because the Bus transform
// rewrites the trace after the workload knobs are applied — equal knobs
// would no longer imply an equal compiled trace (or equal forecast seeds)
// per config. The default ISA is resolved once here: building the H.264
// Molecule library per point would dwarf a pooled run's cost.
func NewRunner(base Config) *Runner {
	if base.ISA == nil {
		base.ISA = isa.H264()
	}
	r := &Runner{base: base, memo: base.Bus == nil}
	// Trail persistence needs the knobs to identify the trace: with the
	// memo off or a verbatim base workload installed, equal persisted keys
	// would not imply equal runs, so the store stays off.
	if base.TrailDir != "" && r.memo && base.Workload == nil {
		r.trailStore, r.trailStoreErr = sim.OpenTrailStore(base.TrailDir)
	}
	return r
}

// TrailPersistence reports the persisted-trail store state: the directory
// (empty when persistence is off), the open error if any, and how many
// runs were served from disk (loads) and persisted to it (saves).
func (r *Runner) TrailPersistence() (dir string, err error, loads, saves int64) {
	if r.trailStore != nil {
		dir = r.trailStore.Dir()
	}
	return dir, r.trailStoreErr, r.trailLoads.Load(), r.trailSaves.Load()
}

// persistKey renders the durable identity of a trail class: the trailKey
// fields in a stable string form. It deliberately excludes the container
// budget (the transfer axis — the store keys files by it separately) and
// the base platform calibration (the store directory is documented as
// exclusive to one base configuration, exactly like the explore cache).
func persistKey(cfg *Config, key workKey) string {
	return fmt.Sprintf("sched=%s|sf=%t|pf=%t|scenario=%s|frames=%d|w=%d|h=%d|seed=%d|motion=%g|scene=%d",
		cfg.Scheduler, cfg.SeedForecasts, cfg.Prefetch, key.scenario,
		key.knobs.Frames, key.knobs.WidthMB, key.knobs.HeightMB,
		key.knobs.Seed, key.knobs.MotionVariability, key.knobs.SceneChangeFrame)
}

// RuntimePoolStats reports how often a RunPoint/RunPointSet runtime request
// was served from the pool (hit) versus built fresh (miss). With the pool
// disabled (base.Bus set) every request counts as a miss. Points served
// entirely from a checkpoint trail never request a runtime and therefore
// count as neither.
func (r *Runner) RuntimePoolStats() (hits, misses int64) {
	return r.poolHits.Load(), r.poolMisses.Load()
}

// DeltaStats reports how RunPoint/RunPointSet requests were satisfied by
// the delta-resimulation layer: serves completed without simulating at all
// (a recorded trail transferred end to end), resumes re-simulated only a
// suffix of the trace, and records simulated from power-on while recording
// a new trail. Requests with delta off (DisableDelta, ineligible Collect
// options, or a Bus-rewritten workload) count as none of the three.
func (r *Runner) DeltaStats() (serves, resumes, records int64) {
	return r.deltaServes.Load(), r.deltaResumes.Load(), r.deltaRecs.Load()
}

// deltaOn reports whether delta-resimulation applies to runs of cfg: the
// memo must be sound (trail identity relies on the same keying as the
// runtime pool) and the collected artifacts checkpointable.
func (r *Runner) deltaOn(cfg *Config) bool {
	return r.memo && !cfg.DisableDelta && sim.DeltaEligible(cfg.Collect)
}

// trailSetFor returns the (lazily created) trail set of cfg's budget-axis
// class.
func (r *Runner) trailSetFor(cfg *Config, key workKey) *trailSet {
	tk := trailKey{
		scheduler:     cfg.Scheduler,
		seedForecasts: cfg.SeedForecasts,
		prefetch:      cfg.Prefetch,
		work:          key,
	}
	v, ok := r.trails.Load(tk)
	if !ok {
		v, _ = r.trails.LoadOrStore(tk, &trailSet{byBudget: make(map[int]*sim.Trail)})
	}
	return v.(*trailSet)
}

// runPointDelta is RunPoint through the delta-resimulation layer: serve the
// point from a recorded trail when one transfers end to end (no runtime at
// all), otherwise resume from the deepest transferable prefix — falling
// back to a full recording run — and store the resulting trail so future
// requests for this budget full-skip.
func (r *Runner) runPointDelta(ctx context.Context, cfg *Config, key workKey, ct *workload.Compiled, res *sim.Result) error {
	ts := r.trailSetFor(cfg, key)
	var buf [16]*sim.Trail
	cands := ts.candidates(cfg.NumACs, buf[:0])
	for _, t := range cands {
		served, err := t.Serve(ct, cfg.NumACs, cfg.Collect, res)
		if served {
			if err == nil {
				r.deltaServes.Add(1)
			}
			return err
		}
	}
	// Nothing in memory full-skips; a trail persisted by an earlier process
	// (same key, exact budget) still might. A loaded trail joins the
	// in-memory set so subsequent requests skip the disk.
	if r.trailStore != nil {
		if t, ok := r.trailStore.Get(persistKey(cfg, key), cfg.NumACs, ct); ok {
			if served, err := t.Serve(ct, cfg.NumACs, cfg.Collect, res); served {
				if err == nil {
					r.trailLoads.Add(1)
					r.deltaServes.Add(1)
					ts.store(cfg.NumACs, t)
				}
				return err
			}
		}
	}

	rt, pool, err := r.runtime(cfg, runtimeKey{
		scheduler:     cfg.Scheduler,
		numACs:        cfg.NumACs,
		seedForecasts: cfg.SeedForecasts,
		prefetch:      cfg.Prefetch,
		work:          key,
	})
	if err != nil {
		return err
	}
	crt, ok := rt.(sim.Checkpointable)
	if !ok { // custom runtime without checkpoint support
		err = sim.RunCompiled(ctx, ct, rt, cfg.Collect, res)
		r.putRuntime(pool, rt)
		return err
	}
	rec := new(sim.Trail)
	resumed := false
	for _, t := range cands {
		used, rerr := sim.ResumeCompiled(ctx, ct, crt, cfg.Collect, res, t, rec)
		if used {
			resumed, err = true, rerr
			break
		}
	}
	if !resumed {
		err = sim.RunCompiledTrail(ctx, ct, crt, cfg.Collect, res, rec)
	}
	r.putRuntime(pool, rt)
	if err != nil {
		return err // rec incomplete → discarded
	}
	if resumed {
		r.deltaResumes.Add(1)
	} else {
		r.deltaRecs.Add(1)
	}
	ts.store(cfg.NumACs, rec)
	if r.trailStore != nil {
		// Best-effort: a failed save costs a future warm start, never the
		// current result.
		if err := r.trailStore.Put(persistKey(cfg, key), rec); err == nil {
			r.trailSaves.Add(1)
		}
	}
	return nil
}

// runtime returns a runtime for cfg, pooled under key when sound. A non-nil
// pool must be handed back via putRuntime once the run completes — even a
// failed run, since Reset restores power-on state regardless.
func (r *Runner) runtime(cfg *Config, key runtimeKey) (sim.Runtime, *runtimePool, error) {
	if !r.memo {
		r.poolMisses.Add(1)
		rt, err := NewRuntime(*cfg)
		return rt, nil, err
	}
	v, ok := r.runtimes.Load(key)
	if !ok {
		v, _ = r.runtimes.LoadOrStore(key, new(runtimePool))
	}
	pool := v.(*runtimePool)
	if rt, ok := pool.get(); ok {
		r.poolHits.Add(1)
		return rt, pool, nil
	}
	r.poolMisses.Add(1)
	materializeWorkload(cfg, key.work) // forecast seeding reads the trace
	rt, err := NewRuntime(*cfg)
	if err != nil {
		return nil, nil, err
	}
	return rt, pool, nil
}

func (r *Runner) putRuntime(pool *runtimePool, rt sim.Runtime) {
	if pool != nil {
		pool.put(rt)
	}
}

// pointConfig materializes point p over the base config and returns it with
// the workload memo key (zeroed when the base pins a shared trace). When
// memoization is on, cfg.Workload is left nil for generator-driven traces:
// generating the trace is only necessary on a memo or runtime-pool miss,
// and materializeWorkload fills it in exactly there. The steady state —
// warm memo, warm pool — therefore touches neither the ISA builder nor the
// trace generator.
//
// A point naming a scenario swaps in that scenario's ISA (the merged
// instruction set of a multi-app scenario is a different Atom space than
// the base ISA) and uses only the Frames and Seed knobs; it is rejected
// when the base pins a workload or an unknown scenario is named.
func (r *Runner) pointConfig(p explore.Point, collect sim.Options) (Config, workKey, error) {
	cfg := r.base // base.ISA is pre-resolved by NewRunner
	cfg.Scheduler = p.Scheduler
	cfg.NumACs = p.NumACs
	cfg.SeedForecasts = p.SeedForecasts
	cfg.Prefetch = p.Prefetch
	cfg.Collect = collect
	if cfg.Scheduler == "" {
		cfg.Scheduler = "HEF"
	}
	var key workKey
	switch {
	case p.Scenario != "":
		if cfg.Workload != nil {
			return cfg, key, fmt.Errorf("rispp: point %s names a scenario but the base config pins a workload", p.Key())
		}
		if p.Motion != 0 || p.SceneChange != 0 {
			return cfg, key, fmt.Errorf("rispp: point %s combines scenario %q with H.264 knobs", p.Key(), p.Scenario)
		}
		sc, ok := scenario.Find(p.Scenario)
		if !ok {
			return cfg, key, fmt.Errorf("rispp: unknown scenario %q", p.Scenario)
		}
		key = workKey{scenario: p.Scenario, knobs: workload.H264Config{Frames: p.Frames, Seed: p.Seed}}
		cfg.ISA = sc.ISA()
		if !r.memo {
			cfg.Workload = sc.Trace(p.Frames, p.Seed)
		}
	case cfg.Workload != nil:
		// Single shared trace, one memo slot: key stays zero.
	default:
		key.knobs = workload.H264Config{
			Frames:            p.Frames,
			Seed:              p.Seed,
			MotionVariability: p.Motion,
			SceneChangeFrame:  p.SceneChange,
		}
		if !r.memo {
			cfg.Workload = workload.H264(key.knobs)
		}
	}
	if cfg.Bus != nil {
		cfg.setDefaults() // applies the Bus transform to timing and trace
	}
	return cfg, key, nil
}

// materializeWorkload generates the generator-driven trace if pointConfig
// left it lazy (memo on, no pinned base workload). A scenario key always
// resolves: pointConfig already verified the name.
func materializeWorkload(cfg *Config, key workKey) {
	if cfg.Workload != nil {
		return
	}
	if key.scenario != "" {
		sc, _ := scenario.Find(key.scenario)
		cfg.Workload = sc.Trace(key.knobs.Frames, key.knobs.Seed)
		return
	}
	cfg.Workload = workload.H264(key.knobs)
}

// GetResult returns a pooled Result for RunPoint; return it with PutResult
// once its values have been read, so later runs reuse its buffers.
func (r *Runner) GetResult() *sim.Result {
	if res, ok := r.results.Get().(*sim.Result); ok {
		return res
	}
	return new(sim.Result)
}

// PutResult recycles a Result obtained from GetResult. The caller must not
// retain any reference into it afterwards.
func (r *Runner) PutResult(res *sim.Result) { r.results.Put(res) }

// compile lowers cfg's workload, memoizing per workload key when sound.
func (r *Runner) compile(cfg *Config, key workKey) (*workload.Compiled, error) {
	if r.memo {
		if v, ok := r.compiled.Load(key); ok {
			return v.(*workload.Compiled), nil
		}
	}
	materializeWorkload(cfg, key)
	ct, err := workload.Compile(cfg.Workload, cfg.ISA)
	if err != nil {
		return nil, err
	}
	if r.memo {
		if v, loaded := r.compiled.LoadOrStore(key, ct); loaded {
			ct = v.(*workload.Compiled)
		}
	}
	return ct, nil
}

// RunPoint simulates design point p into the caller-owned res (typically
// from GetResult), collecting the artifacts selected by collect. The
// runtime comes from the runtime pool (built fresh on a miss) and is
// returned to it afterwards; the compiled trace comes from the memo when
// possible. On error res holds partial state and must not be interpreted
// (it is still safe to PutResult).
func (r *Runner) RunPoint(ctx context.Context, p explore.Point, collect sim.Options, res *sim.Result) error {
	cfg, key, err := r.pointConfig(p, collect)
	if err != nil {
		return err
	}
	ct, err := r.compile(&cfg, key)
	if err != nil {
		return err
	}
	if r.deltaOn(&cfg) {
		return r.runPointDelta(ctx, &cfg, key, ct, res)
	}
	rt, pool, err := r.runtime(&cfg, runtimeKey{
		scheduler:     cfg.Scheduler,
		numACs:        cfg.NumACs,
		seedForecasts: cfg.SeedForecasts,
		prefetch:      cfg.Prefetch,
		work:          key,
	})
	if err != nil {
		return err
	}
	err = sim.RunCompiled(ctx, ct, rt, cfg.Collect, res)
	r.putRuntime(pool, rt)
	return err
}

// RunPointSet simulates several design points that share one workload in a
// single pass over the compiled trace (sim.RunCompiledSet): the trace is
// walked once and every runtime advances through it phase by phase. The
// points may differ in scheduler, #ACs, forecast seeding, and prefetching,
// but must agree on the workload knobs; results[i] receives point ps[i].
// Each result is field-exact identical to a RunPoint of the same point.
func (r *Runner) RunPointSet(ctx context.Context, ps []explore.Point, collect sim.Options, results []*sim.Result) error {
	if len(ps) != len(results) {
		return fmt.Errorf("rispp: RunPointSet got %d points but %d results", len(ps), len(results))
	}
	if len(ps) == 0 {
		return nil
	}
	cfg0, key0, err0 := r.pointConfig(ps[0], collect)
	if err0 != nil {
		return err0
	}
	if r.deltaOn(&cfg0) {
		// Delta split: each point either full-skips from a recorded trail,
		// resumes a prefix, or records a new trail. After the first pass
		// over a budget grid the grouped walk below would simulate nothing
		// anyway, so delta-eligible sets run point-wise.
		ct, err := r.compile(&cfg0, key0)
		if err != nil {
			return err
		}
		for i, p := range ps {
			if i > 0 {
				if p0 := ps[0]; p.Frames != p0.Frames || p.Seed != p0.Seed ||
					p.Motion != p0.Motion || p.SceneChange != p0.SceneChange ||
					p.Scenario != p0.Scenario {
					return fmt.Errorf("rispp: RunPointSet points disagree on workload knobs: %s vs %s", p0.Key(), p.Key())
				}
			}
			cfg, key, err := r.pointConfig(p, collect)
			if err != nil {
				return err
			}
			if err := r.runPointDelta(ctx, &cfg, key, ct, results[i]); err != nil {
				return err
			}
		}
		return nil
	}
	rts := make([]sim.Runtime, len(ps))
	pools := make([]*runtimePool, len(ps))
	var ct *workload.Compiled
	for i, p := range ps {
		cfg, key, err := r.pointConfig(p, collect)
		if err != nil {
			return err
		}
		if i == 0 {
			if ct, err = r.compile(&cfg, key); err != nil {
				return err
			}
		} else if p0 := ps[0]; p.Frames != p0.Frames || p.Seed != p0.Seed ||
			p.Motion != p0.Motion || p.SceneChange != p0.SceneChange ||
			p.Scenario != p0.Scenario {
			return fmt.Errorf("rispp: RunPointSet points disagree on workload knobs: %s vs %s", p0.Key(), p.Key())
		}
		rt, pool, err := r.runtime(&cfg, runtimeKey{
			scheduler:     cfg.Scheduler,
			numACs:        cfg.NumACs,
			seedForecasts: cfg.SeedForecasts,
			prefetch:      cfg.Prefetch,
			work:          key,
		})
		if err != nil {
			for j := 0; j < i; j++ {
				r.putRuntime(pools[j], rts[j])
			}
			return err
		}
		rts[i], pools[i] = rt, pool
	}
	err := sim.RunCompiledSet(ctx, ct, rts, collect, results)
	for i := range rts {
		r.putRuntime(pools[i], rts[i])
	}
	return err
}

// Explorer wires the design-space exploration engine of internal/explore to
// this library: every explore.Point is materialized as a Config and
// simulated on a bounded worker pool, through a shared Runner (see Runner
// for the workload semantics and the scratch-sharing guarantees). Points
// that differ only in their scheduler are batched into a single pass over
// the shared compiled trace (Runner.RunPointSet).
func Explorer(base Config, workers int, cache *explore.Cache) *explore.Engine {
	rn := NewRunner(base)
	eng := &explore.Engine{
		Workers: workers,
		Run:     rn.EngineRun(),
		RunSet:  rn.EngineRunSet(),
	}
	if cache != nil { // avoid a typed-nil Store interface
		eng.Cache = cache
	}
	return eng
}

// EngineRun adapts the Runner to the exploration engine's job signature:
// each call runs the point into a pooled Result and condenses it to
// explore.Metrics.
func (r *Runner) EngineRun() explore.RunFunc {
	return func(ctx context.Context, p explore.Point) (explore.Metrics, error) {
		res := r.GetResult()
		defer r.PutResult(res)
		if err := r.RunPoint(ctx, p, r.base.Collect, res); err != nil {
			return explore.Metrics{}, err
		}
		return explore.Metrics{
			TotalCycles:  res.TotalCycles,
			StallCycles:  res.StallCycles,
			SWExecutions: res.TotalSWExecutions(),
			HWExecutions: res.TotalHWExecutions(),
		}, nil
	}
}

// EngineRunSet adapts Runner.RunPointSet to the engine's batched signature:
// the points of one scheduler group run in a single pass over their shared
// compiled trace, into pooled Results condensed to explore.Metrics.
func (r *Runner) EngineRunSet() explore.RunSetFunc {
	return func(ctx context.Context, ps []explore.Point) ([]explore.Metrics, error) {
		results := make([]*sim.Result, len(ps))
		for i := range results {
			results[i] = r.GetResult()
		}
		defer func() {
			for _, res := range results {
				r.PutResult(res)
			}
		}()
		if err := r.RunPointSet(ctx, ps, r.base.Collect, results); err != nil {
			return nil, err
		}
		ms := make([]explore.Metrics, len(ps))
		for i, res := range results {
			ms[i] = explore.Metrics{
				TotalCycles:  res.TotalCycles,
				StallCycles:  res.StallCycles,
				SWExecutions: res.TotalSWExecutions(),
				HWExecutions: res.TotalHWExecutions(),
			}
		}
		return ms, nil
	}
}

// CheckedExplorer is Explorer with every simulated point validated by the
// reference oracle (internal/oracle.Check): conservation of executions,
// phase structure, the exact cycle identity, and the software upper bound.
// A point that simulates but violates an invariant comes back as an error
// rather than a silently wrong metric — the mode adaptive search uses, so
// a guided optimizer can never exploit a simulator bug.
func CheckedExplorer(base Config, workers int, cache *explore.Cache) *explore.Engine {
	rn := NewRunner(base)
	eng := &explore.Engine{
		Workers: workers,
		Run:     rn.CheckedEngineRun(),
		RunSet:  rn.CheckedEngineRunSet(),
	}
	if cache != nil { // avoid a typed-nil Store interface
		eng.Cache = cache
	}
	return eng
}

// check validates res for point p against the oracle invariants. The trace
// comes from the compile memo, so the only added cost is the oracle's
// linear walk over the result.
func (r *Runner) check(p explore.Point, res *sim.Result) error {
	cfg, key, err := r.pointConfig(p, r.base.Collect)
	if err != nil {
		return err
	}
	ct, err := r.compile(&cfg, key)
	if err != nil {
		return err
	}
	if err := oracle.Check(ct.Trace, cfg.ISA, res); err != nil {
		return fmt.Errorf("rispp: point %s: %w", p.Key(), err)
	}
	return nil
}

// CheckedEngineRun is EngineRun followed by the oracle invariant checker
// on every result.
func (r *Runner) CheckedEngineRun() explore.RunFunc {
	return func(ctx context.Context, p explore.Point) (explore.Metrics, error) {
		res := r.GetResult()
		defer r.PutResult(res)
		if err := r.RunPoint(ctx, p, r.base.Collect, res); err != nil {
			return explore.Metrics{}, err
		}
		if err := r.check(p, res); err != nil {
			return explore.Metrics{}, err
		}
		return explore.Metrics{
			TotalCycles:  res.TotalCycles,
			StallCycles:  res.StallCycles,
			SWExecutions: res.TotalSWExecutions(),
			HWExecutions: res.TotalHWExecutions(),
		}, nil
	}
}

// CheckedEngineRunSet is EngineRunSet followed by the oracle invariant
// checker on every result of the batch.
func (r *Runner) CheckedEngineRunSet() explore.RunSetFunc {
	return func(ctx context.Context, ps []explore.Point) ([]explore.Metrics, error) {
		results := make([]*sim.Result, len(ps))
		for i := range results {
			results[i] = r.GetResult()
		}
		defer func() {
			for _, res := range results {
				r.PutResult(res)
			}
		}()
		if err := r.RunPointSet(ctx, ps, r.base.Collect, results); err != nil {
			return nil, err
		}
		ms := make([]explore.Metrics, len(ps))
		for i, res := range results {
			if err := r.check(ps[i], res); err != nil {
				return nil, err
			}
			ms[i] = explore.Metrics{
				TotalCycles:  res.TotalCycles,
				StallCycles:  res.StallCycles,
				SWExecutions: res.TotalSWExecutions(),
				HWExecutions: res.TotalHWExecutions(),
			}
		}
		return ms, nil
	}
}

// Sweep runs the given schedulers over a range of Atom Container counts
// (the Figure 7 / Table 2 experiment) and returns results indexed
// [scheduler][numACs]. The points run concurrently through the exploration
// engine; the simulator is deterministic, so results are identical to a
// sequential sweep.
func Sweep(base Config, schedulers []string, acs []int) (map[string]map[int]int64, error) {
	spec := explore.Spec{
		Schedulers:    schedulers,
		ACs:           acs,
		SeedForecasts: []bool{base.SeedForecasts},
		Prefetch:      []bool{base.Prefetch},
	}
	res, err := Explorer(base, 0, nil).Execute(context.Background(), spec, nil)
	if err != nil {
		return nil, fmt.Errorf("rispp: sweep: %w", err)
	}
	if err := res.FirstErr(); err != nil {
		return nil, fmt.Errorf("rispp: sweep: %w", err)
	}
	out := make(map[string]map[int]int64, len(schedulers))
	for _, rec := range res.Records {
		if out[rec.Point.Scheduler] == nil {
			out[rec.Point.Scheduler] = make(map[int]int64, len(acs))
		}
		out[rec.Point.Scheduler][rec.Point.NumACs] = rec.TotalCycles
	}
	return out, nil
}
