package rispp_test

import (
	"fmt"

	"rispp"
	"rispp/internal/workload"
)

// Run two frames of the H.264 encoder on a 10-container RISPP fabric with
// the HEF scheduler and compare against the plain base processor.
func Example() {
	tr := workload.H264(workload.H264Config{Frames: 2})

	hef, err := rispp.Run(rispp.Config{
		Scheduler:     "HEF",
		NumACs:        10,
		Workload:      tr,
		SeedForecasts: true,
	})
	if err != nil {
		panic(err)
	}
	sw, err := rispp.Run(rispp.Config{Scheduler: "software", Workload: tr})
	if err != nil {
		panic(err)
	}
	fmt.Println("runtime:", hef.Runtime)
	fmt.Println("faster than software:", hef.TotalCycles < sw.TotalCycles)
	// Output:
	// runtime: RISPP/HEF
	// faster than software: true
}
