package rispp

import (
	"context"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/sim"
)

// TestControlFlowFlipsSchedulerRanking pins the headline property of the
// control-flow scenario library: scheduler rankings measured on the H.264
// reference workload do not transfer to dynamic control flow. On plain
// H.264 at 8 Atom Containers SJF finishes ahead of FSFR; on the
// "branchy-modes" scenario — whose seeded branch model reorders hot spots
// and defeats the monitor's forecasts — the ranking inverts and FSFR
// finishes ahead of SJF. Both gaps are required to be real (>3%), not
// ties, so the flip cannot rot into noise silently.
func TestControlFlowFlipsSchedulerRanking(t *testing.T) {
	rn := NewRunner(Config{})
	run := func(sched, scen string) int64 {
		t.Helper()
		p := explore.Point{Scheduler: sched, NumACs: 8, Frames: 8, Seed: 1,
			SeedForecasts: true, Scenario: scen}
		res := new(sim.Result)
		if err := rn.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatalf("%s on %q: %v", sched, scen, err)
		}
		return res.TotalCycles
	}

	h264SJF, h264FSFR := run("SJF", ""), run("FSFR", "")
	cfSJF, cfFSFR := run("SJF", "branchy-modes"), run("FSFR", "branchy-modes")
	t.Logf("h264: SJF=%d FSFR=%d; branchy-modes: SJF=%d FSFR=%d",
		h264SJF, h264FSFR, cfSJF, cfFSFR)

	if h264SJF >= h264FSFR {
		t.Errorf("H.264 baseline: SJF (%d) should beat FSFR (%d)", h264SJF, h264FSFR)
	}
	if cfFSFR >= cfSJF {
		t.Errorf("branchy-modes: FSFR (%d) should beat SJF (%d) — ranking flip lost", cfFSFR, cfSJF)
	}
	// Margins: >3% each way, so neither leg of the flip is a near-tie.
	if h264FSFR-h264SJF <= h264SJF*3/100 {
		t.Errorf("H.264 SJF-over-FSFR margin too thin: %d vs %d", h264SJF, h264FSFR)
	}
	if cfSJF-cfFSFR <= cfFSFR*3/100 {
		t.Errorf("branchy-modes FSFR-over-SJF margin too thin: %d vs %d", cfFSFR, cfSJF)
	}
}
