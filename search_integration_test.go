// End-to-end tests of the adaptive-search subsystem over the real
// simulator: internal/search driving the oracle-checked exploration
// engine, exactly as `risppexplore -search` wires them.
package rispp

import (
	"bytes"
	"context"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/hwmodel"
	"rispp/internal/search"
)

func searchSpec() explore.Spec {
	return explore.Spec{
		Schedulers: []string{"software", "Molen", "HEF", "ASF"},
		ACs:        []int{4, 6, 8, 10, 12, 14},
		Frames:     []int{3},
	}
}

// TestSearchOverSimulator runs every strategy against the real simulator
// through the oracle-checked engine and verifies the determinism contract:
// the journal, streamed records and front are byte-identical across runs,
// whether points run one-by-one or through the grouped single-pass path.
func TestSearchOverSimulator(t *testing.T) {
	spec := searchSpec()
	for _, strat := range search.StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			run := func(grouped bool, workers int) (*search.Outcome, []byte, []byte) {
				t.Helper()
				eng := CheckedExplorer(Config{}, workers, nil)
				if !grouped {
					eng.RunSet = nil
				}
				var journal, stream bytes.Buffer
				out, err := search.Run(context.Background(), eng, spec, search.Config{
					Strategy: strat, Seed: 9, Budget: 10, BatchSize: 4,
					Journal: &journal, Stream: &stream,
				})
				if err != nil {
					t.Fatal(err)
				}
				return out, journal.Bytes(), stream.Bytes()
			}
			out, journal, stream := run(true, 4)
			if out.Evaluated == 0 || out.Evaluated > 10 {
				t.Fatalf("evaluated %d points, want 1..10", out.Evaluated)
			}
			if out.Failed != 0 {
				t.Fatalf("%d points failed under the oracle-checked engine", out.Failed)
			}
			if len(out.Front) == 0 {
				t.Fatal("empty front")
			}
			for _, fp := range out.Front {
				if want := hwmodel.PointArea(fp.Point.Scheduler, fp.Point.NumACs); fp.Area != want {
					t.Errorf("front point %s area %d, want hwmodel's %d", fp.Point.Key(), fp.Area, want)
				}
			}
			for _, variant := range []struct {
				name    string
				grouped bool
				workers int
			}{{"ungrouped", false, 1}, {"grouped-parallel", true, 8}} {
				_, j, s := run(variant.grouped, variant.workers)
				if !bytes.Equal(j, journal) {
					t.Errorf("%s: journal differs", variant.name)
				}
				if !bytes.Equal(s, stream) {
					t.Errorf("%s: stream differs", variant.name)
				}
			}
			rep, err := search.Replay(bytes.NewReader(journal))
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if search.FormatFront(rep.Front) != search.FormatFront(out.Front) {
				t.Error("replayed front differs from the run's front")
			}
		})
	}
}

// TestCheckedExplorerMatchesExplorer pins that the oracle-checked engine
// produces the same metrics as the plain one — the checker observes, it
// must never perturb.
func TestCheckedExplorerMatchesExplorer(t *testing.T) {
	spec := searchSpec()
	ctx := context.Background()
	plain, err := Explorer(Config{}, 2, nil).Execute(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := CheckedExplorer(Config{}, 2, nil).Execute(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := checked.FirstErr(); err != nil {
		t.Fatalf("oracle rejected a point of the paper grid: %v", err)
	}
	if len(plain.Records) != len(checked.Records) {
		t.Fatalf("%d checked records for %d plain ones", len(checked.Records), len(plain.Records))
	}
	for i, rec := range plain.Records {
		c := checked.Records[i]
		if c.Point != rec.Point || c.TotalCycles != rec.TotalCycles || c.Area != rec.Area {
			t.Errorf("record %d differs: checked %+v, plain %+v", i, c, rec)
		}
	}
}
