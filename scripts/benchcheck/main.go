// Command benchcheck is the CI bench-regression gate: it parses `go test
// -bench` output from stdin, reduces repeated runs (-count=N) to the best
// observation per benchmark, and compares ns/op and allocs/op against a
// committed baseline.
//
//	go test -run '^$' -bench BenchmarkRun -benchtime 100x -benchmem -count 5 ./internal/sim \
//	    | go run ./scripts/benchcheck -baseline BENCH_baseline.json
//
// The gate fails (exit 1) when any baselined benchmark regresses more than
// -tolerance in ns/op (default 0.25 = +25%), when allocs/op increases at
// all, or when a baselined benchmark is missing from the input. Benchmarks
// without a baseline entry are reported but not gated. -update rewrites
// the baseline from the measured values instead of checking.
//
// Minima are compared, not means: the fastest of N repeats is the run
// least disturbed by scheduling noise, which is what a regression gate
// should track on shared CI machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference file.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note,omitempty"`
	// Benchmarks maps the bare benchmark name (no -cpus suffix) to its
	// reference numbers.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's reference point.
type Entry struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression")
		update       = flag.Bool("update", false, "rewrite the baseline from the measured values")
	)
	flag.Parse()
	if env := os.Getenv("BENCH_TOLERANCE"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fatal(fmt.Errorf("BENCH_TOLERANCE %q: %w", env, err))
		}
		*tolerance = v
	}

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin — run with: go test -bench ... | benchcheck"))
	}

	if *update {
		if err := writeBaseline(*baselinePath, measured); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(measured), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	failed := check(base, measured, *tolerance)
	if failed {
		os.Exit(1)
	}
}

// check prints one verdict line per benchmark and reports whether any
// baselined benchmark failed the gate.
func check(base Baseline, measured map[string]Entry, tolerance float64) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		ref := base.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			fmt.Printf("FAIL  %-24s missing from bench output (baseline %s)\n", name, fmtEntry(ref))
			failed = true
			continue
		}
		ratio := got.NsPerOp / ref.NsPerOp
		verdict := "ok  "
		switch {
		case got.AllocsPerOp > ref.AllocsPerOp:
			verdict = "FAIL"
			failed = true
		case ratio > 1+tolerance:
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-24s %12.0f ns/op (%+6.1f%% vs %.0f), %d allocs/op (baseline %d)\n",
			verdict, name, got.NsPerOp, 100*(ratio-1), ref.NsPerOp, got.AllocsPerOp, ref.AllocsPerOp)
	}
	extras := make([]string, 0, len(measured))
	for name := range measured {
		if _, ok := base.Benchmarks[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		got := measured[name]
		fmt.Printf("info  %-24s %12.0f ns/op, %d allocs/op (not baselined)\n", name, got.NsPerOp, got.AllocsPerOp)
	}
	if failed {
		fmt.Printf("benchcheck: REGRESSION — over +%.0f%% ns/op or any allocs/op increase (see FAIL lines)\n", 100*tolerance)
	} else {
		fmt.Printf("benchcheck: ok (%d benchmarks within +%.0f%% ns/op, no alloc increases)\n", len(names), 100*tolerance)
	}
	return failed
}

func fmtEntry(e Entry) string {
	return fmt.Sprintf("%.0f ns/op, %d allocs/op", e.NsPerOp, e.AllocsPerOp)
}

// parseBench extracts {ns/op, allocs/op} per benchmark from `go test
// -bench` output, keeping the minimum of repeated runs. The -cpus suffix
// ("BenchmarkRun-8") is stripped so baselines are core-count independent.
func parseBench(f io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo for the CI log
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var entry Entry
		var haveNs, haveAllocs bool
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q in %q", val, line)
				}
				entry.NsPerOp, haveNs = v, true
			case "allocs/op":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op %q in %q", val, line)
				}
				entry.AllocsPerOp, haveAllocs = v, true
			}
		}
		if !haveNs {
			continue
		}
		if !haveAllocs {
			return nil, fmt.Errorf("%s has no allocs/op — run go test with -benchmem", name)
		}
		if prev, ok := out[name]; !ok || entry.NsPerOp < prev.NsPerOp {
			e := entry
			if ok && prev.AllocsPerOp < e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
			out[name] = e
		} else if entry.AllocsPerOp < prev.AllocsPerOp {
			prev.AllocsPerOp = entry.AllocsPerOp
			out[name] = prev
		}
	}
	return out, sc.Err()
}

func readBaseline(path string) (Baseline, error) {
	var base Baseline
	b, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(b, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return base, fmt.Errorf("%s: no benchmarks", path)
	}
	return base, nil
}

func writeBaseline(path string, measured map[string]Entry) error {
	base := Baseline{
		Note:       "minimum of repeated runs; regenerate with: make bench-baseline (gate) or make bench-json (snapshot)",
		Benchmarks: measured,
	}
	b, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
