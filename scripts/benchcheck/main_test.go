package main

import (
	"strings"
	"testing"
)

func baselineOf(entries map[string]Entry) Baseline {
	return Baseline{Benchmarks: entries}
}

// TestCheckFailsOnMissingBenchmark pins the gate's coverage guarantee: a
// benchmark present in the committed baseline but absent from the bench
// run must fail the check, so a renamed or accidentally skipped benchmark
// cannot silently drop out of the regression gate.
func TestCheckFailsOnMissingBenchmark(t *testing.T) {
	base := baselineOf(map[string]Entry{
		"BenchmarkRun":   {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkSweep": {NsPerOp: 5000, AllocsPerOp: 10},
	})
	measured := map[string]Entry{
		"BenchmarkRun": {NsPerOp: 1000, AllocsPerOp: 0},
		// BenchmarkSweep missing from the run.
	}
	if !check(base, measured, 0.25) {
		t.Error("check passed although a baselined benchmark was missing from the run")
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	base := baselineOf(map[string]Entry{"BenchmarkRun": {NsPerOp: 1000, AllocsPerOp: 0}})
	if !check(base, map[string]Entry{"BenchmarkRun": {NsPerOp: 1300, AllocsPerOp: 0}}, 0.25) {
		t.Error("check passed a +30% ns/op regression at 25% tolerance")
	}
	if check(base, map[string]Entry{"BenchmarkRun": {NsPerOp: 1200, AllocsPerOp: 0}}, 0.25) {
		t.Error("check failed a +20% ns/op change at 25% tolerance")
	}
}

func TestCheckFailsOnAllocIncrease(t *testing.T) {
	base := baselineOf(map[string]Entry{"BenchmarkRun": {NsPerOp: 1000, AllocsPerOp: 0}})
	if !check(base, map[string]Entry{"BenchmarkRun": {NsPerOp: 900, AllocsPerOp: 1}}, 0.25) {
		t.Error("check passed an allocs/op increase")
	}
}

func TestCheckIgnoresUnbaselinedBenchmarks(t *testing.T) {
	base := baselineOf(map[string]Entry{"BenchmarkRun": {NsPerOp: 1000, AllocsPerOp: 0}})
	measured := map[string]Entry{
		"BenchmarkRun":           {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkSweepPerPoint": {NsPerOp: 99999, AllocsPerOp: 12345},
	}
	if check(base, measured, 0.25) {
		t.Error("check failed on a benchmark that has no baseline entry")
	}
}

// TestParseBenchMinOfRepeats pins the reduction: repeated runs keep the
// fastest ns/op and the smallest allocs/op, the -cpus suffix is stripped,
// and sub-benchmark names survive intact.
func TestParseBenchMinOfRepeats(t *testing.T) {
	out, err := parseBench(strings.NewReader(`
goos: linux
BenchmarkRun-8           	  100	 1200 ns/op	  64 B/op	 2 allocs/op
BenchmarkRun-8           	  100	 1000 ns/op	  64 B/op	 3 allocs/op
BenchmarkRunReused/HEF-8 	  100	 5000 ns/op	   0 B/op	 0 allocs/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	run, ok := out["BenchmarkRun"]
	if !ok {
		t.Fatalf("BenchmarkRun not parsed (got %v)", out)
	}
	if run.NsPerOp != 1000 || run.AllocsPerOp != 2 {
		t.Errorf("BenchmarkRun reduced to %+v, want min ns/op 1000 and min allocs/op 2", run)
	}
	if _, ok := out["BenchmarkRunReused/HEF"]; !ok {
		t.Errorf("sub-benchmark name not preserved (got %v)", out)
	}
}

func TestParseBenchRequiresBenchmem(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkRun-8 100 1000 ns/op\n"))
	if err == nil {
		t.Error("parseBench accepted output without allocs/op")
	}
}
