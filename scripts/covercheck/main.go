// Command covercheck enforces the repository's coverage floor: it parses a
// `go test -coverprofile` file, prints a per-package summary plus a
// badge-friendly total line, and exits non-zero when total statement
// coverage falls below the floor.
//
//	go test -short -coverprofile=cover.out ./...
//	go run ./scripts/covercheck -profile cover.out -floor 60
//
// Blocks recorded more than once (e.g. code exercised from several test
// binaries) are merged by maximum hit count, matching `go tool cover
// -func` totals.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type block struct {
	stmts int
	hit   bool
}

func main() {
	var (
		profile = flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
		floor   = flag.Float64("floor", 60, "minimum total statement coverage in percent")
	)
	flag.Parse()

	blocks, err := parseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	if len(blocks) == 0 {
		fatal(fmt.Errorf("%s: no coverage blocks", *profile))
	}

	type agg struct{ total, covered int }
	perPkg := make(map[string]*agg)
	var total, covered int
	for id, b := range blocks {
		pkg := id[:strings.LastIndex(id[:strings.Index(id, ":")], "/")]
		a := perPkg[pkg]
		if a == nil {
			a = &agg{}
			perPkg[pkg] = a
		}
		a.total += b.stmts
		total += b.stmts
		if b.hit {
			a.covered += b.stmts
			covered += b.stmts
		}
	}

	pkgs := make([]string, 0, len(perPkg))
	for pkg := range perPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		a := perPkg[pkg]
		fmt.Printf("%6.1f%%  %s (%d/%d statements)\n", pct(a.covered, a.total), pkg, a.covered, a.total)
	}

	totalPct := pct(covered, total)
	fmt.Printf("\ncoverage: %.1f%% of statements (floor %.0f%%)\n", totalPct, *floor)
	if totalPct < *floor {
		fmt.Printf("covercheck: FAIL — total coverage %.1f%% is below the %.0f%% floor\n", totalPct, *floor)
		os.Exit(1)
	}
	fmt.Println("covercheck: ok")
}

func pct(covered, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(covered) / float64(total)
}

// parseProfile reads profile lines of the form
// "pkg/file.go:start.col,end.col numStmts count", merging duplicate blocks.
func parseProfile(path string) (map[string]block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Text()
		if first {
			first = false
			if strings.HasPrefix(line, "mode:") {
				continue
			}
		}
		if line == "" {
			continue
		}
		// id is "pkg/file.go:start,end"; the remaining two fields are the
		// statement count and the hit count.
		lastSpace := strings.LastIndexByte(line, ' ')
		if lastSpace < 0 {
			return nil, fmt.Errorf("%s: bad line %q", path, line)
		}
		midSpace := strings.LastIndexByte(line[:lastSpace], ' ')
		if midSpace < 0 {
			return nil, fmt.Errorf("%s: bad line %q", path, line)
		}
		stmts, err1 := strconv.Atoi(line[midSpace+1 : lastSpace])
		count, err2 := strconv.Atoi(line[lastSpace+1:])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s: bad counts in %q", path, line)
		}
		id := line[:midSpace]
		b := blocks[id]
		b.stmts = stmts
		b.hit = b.hit || count > 0
		blocks[id] = b
	}
	return blocks, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covercheck:", err)
	os.Exit(1)
}
