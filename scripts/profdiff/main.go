// Command profdiff produces a before/after CPU- and heap-profile delta for
// one named benchmark, answering "where did the time go" for a performance
// change without leaving the repository tooling.
//
// Workflow (wrapped by `make prof-diff`):
//
//  1. On the base commit:   go run ./scripts/profdiff -bench BenchmarkRunHEF -pkg ./internal/sim
//     → runs the benchmark at -count N with -cpuprofile/-memprofile and
//     records the profiles as the "before" snapshot under .profdiff/.
//  2. Apply the change, run the identical command again
//     → records the "after" snapshot and prints a top-N delta table of
//     cumulative time (and allocated space) per function, sorted by the
//     magnitude of the change.
//
// Pass -reset to drop the recorded "before" and start a new comparison;
// pass -a/-b to diff two existing pprof files directly without running
// anything. The tool shells out to `go test` and `go tool pprof` only — no
// dependencies beyond the toolchain.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	bench   = flag.String("bench", "", "benchmark name (anchored regex) to profile, e.g. BenchmarkRunHEF")
	pkg     = flag.String("pkg", "./internal/sim", "package containing the benchmark")
	count   = flag.Int("count", 5, "benchmark -count (profiles merge across repeats)")
	topN    = flag.Int("top", 25, "rows in the delta table")
	dir     = flag.String("dir", ".profdiff", "directory holding the before/after snapshots")
	reset   = flag.Bool("reset", false, "discard the recorded before snapshot and record a new one")
	fileA   = flag.String("a", "", "diff mode: 'before' pprof file (skips running the benchmark)")
	fileB   = flag.String("b", "", "diff mode: 'after' pprof file (skips running the benchmark)")
	verbose = flag.Bool("v", false, "echo the commands being run")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	if *fileA != "" || *fileB != "" {
		if *fileA == "" || *fileB == "" {
			return fmt.Errorf("-a and -b must be given together")
		}
		return printDelta("cpu (cumulative)", *fileA, *fileB, pprofArgs("cpu"))
	}
	if *bench == "" {
		return fmt.Errorf("missing -bench (or -a/-b for direct diff mode)")
	}

	slug := sanitize(*bench)
	beforeCPU := filepath.Join(*dir, slug+".before.cpu.pprof")
	beforeMem := filepath.Join(*dir, slug+".before.mem.pprof")
	afterCPU := filepath.Join(*dir, slug+".after.cpu.pprof")
	afterMem := filepath.Join(*dir, slug+".after.mem.pprof")

	if *reset {
		for _, f := range []string{beforeCPU, beforeMem, afterCPU, afterMem} {
			os.Remove(f)
		}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	_, err := os.Stat(beforeCPU)
	recording := os.IsNotExist(err)
	cpuOut, memOut := afterCPU, afterMem
	if recording {
		cpuOut, memOut = beforeCPU, beforeMem
	}

	// -cpuprofile paths are interpreted relative to the package directory
	// by `go test`, so hand it absolute paths.
	absCPU, err := filepath.Abs(cpuOut)
	if err != nil {
		return err
	}
	absMem, err := filepath.Abs(memOut)
	if err != nil {
		return err
	}
	args := []string{
		"test", "-run", "^$",
		"-bench", "^" + *bench + "$",
		"-count", strconv.Itoa(*count),
		"-cpuprofile", absCPU,
		"-memprofile", absMem,
		*pkg,
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "+ go", strings.Join(args, " "))
	}
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchmark run failed: %w", err)
	}

	if recording {
		fmt.Printf("recorded before snapshot for %s (%s, count=%d) under %s\n",
			*bench, *pkg, *count, *dir)
		fmt.Println("apply your change and run the same command again to print the delta table")
		return nil
	}
	if err := printDelta("cpu (cumulative ms)", beforeCPU, afterCPU, pprofArgs("cpu")); err != nil {
		return err
	}
	fmt.Println()
	return printDelta("heap (alloc_space kB)", beforeMem, afterMem, pprofArgs("mem"))
}

func sanitize(s string) string {
	return regexp.MustCompile(`[^A-Za-z0-9_.-]+`).ReplaceAllString(s, "_")
}

func pprofArgs(kind string) []string {
	args := []string{"tool", "pprof", "-top", "-cum", "-nodecount", strconv.Itoa(*topN * 4)}
	if kind == "mem" {
		args = append(args, "-sample_index=alloc_space", "-unit=kb")
	} else {
		args = append(args, "-unit=ms")
	}
	return args
}

// topRows runs `go tool pprof -top` on the profile and parses the
// cumulative column per function.
func topRows(profile string, args []string) (map[string]float64, error) {
	cmd := exec.Command("go", append(args, profile)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("pprof %s: %v: %s", profile, err, ee.Stderr)
		}
		return nil, fmt.Errorf("pprof %s: %w", profile, err)
	}
	rows := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	header := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if header {
			if strings.HasPrefix(line, "flat ") || strings.HasPrefix(line, "flat\t") {
				header = false
			}
			continue
		}
		// Columns: flat flat% sum% cum cum% name...
		f := strings.Fields(line)
		if len(f) < 6 {
			continue
		}
		cum, err := parseValue(f[3])
		if err != nil {
			continue
		}
		rows[strings.Join(f[5:], " ")] = cum
	}
	return rows, sc.Err()
}

// parseValue strips the unit suffix pprof appends (ms, kB, …) and parses
// the numeric prefix.
func parseValue(s string) (float64, error) {
	i := len(s)
	for i > 0 && !(s[i-1] >= '0' && s[i-1] <= '9') && s[i-1] != '.' {
		i--
	}
	return strconv.ParseFloat(s[:i], 64)
}

func printDelta(title, before, after string, args []string) error {
	b, err := topRows(before, args)
	if err != nil {
		return err
	}
	a, err := topRows(after, args)
	if err != nil {
		return err
	}
	names := make(map[string]bool, len(a)+len(b))
	for n := range a {
		names[n] = true
	}
	for n := range b {
		names[n] = true
	}
	type delta struct {
		name          string
		before, after float64
		diff          float64
	}
	var ds []delta
	for n := range names {
		d := delta{name: n, before: b[n], after: a[n]}
		d.diff = d.after - d.before
		if d.diff != 0 {
			ds = append(ds, d)
		}
	}
	sort.Slice(ds, func(i, j int) bool {
		di, dj := ds[i].diff, ds[j].diff
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return ds[i].name < ds[j].name
	})
	if len(ds) > *topN {
		ds = ds[:*topN]
	}
	fmt.Printf("== %s: top %d by |delta| (%s → %s)\n", title, *topN, before, after)
	fmt.Printf("%12s %12s %12s %8s  %s\n", "before", "after", "delta", "pct", "function")
	for _, d := range ds {
		pct := "new"
		if d.before != 0 {
			pct = fmt.Sprintf("%+.1f%%", 100*d.diff/d.before)
		} else if d.after == 0 {
			pct = "gone"
		}
		fmt.Printf("%12.2f %12.2f %+12.2f %8s  %s\n", d.before, d.after, d.diff, pct, d.name)
	}
	if len(ds) == 0 {
		fmt.Println("(no differing functions — profiles are identical at this granularity)")
	}
	return nil
}
