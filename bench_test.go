// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 5). Run with:
//
//	go test -bench=. -benchmem
//
// Each paper artifact has one benchmark; custom metrics report the headline
// numbers (speedups, cycle counts) so the paper-vs-measured comparison of
// EXPERIMENTS.md can be reproduced from the bench output alone.
package rispp

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"rispp/internal/experiments"
	"rispp/internal/explore"
	"rispp/internal/hwmodel"
	"rispp/internal/isa"
	"rispp/internal/membus"
	"rispp/internal/molecule"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/workload"
)

// paperParams reproduces the full evaluation setup (140 CIF frames,
// 5–24 ACs). The sweeps take a few seconds per iteration.
var paperParams = experiments.Params{}

// BenchmarkTable1SILibrary regenerates Table 1: the H.264 SI inventory.
func BenchmarkTable1SILibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1()
	}
}

// BenchmarkFig2UpgradeVsNoUpgrade regenerates Figure 2: SAD+SATD executions
// per 100K cycles in the ME hot spot with and without stepwise SI upgrade.
func BenchmarkFig2UpgradeVsNoUpgrade(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2()
	}
	b.ReportMetric(float64(r.With.TotalCycles), "cycles-with-upgrade")
	b.ReportMetric(float64(r.Without.TotalCycles), "cycles-no-upgrade")
	b.ReportMetric(float64(r.Without.TotalCycles)/float64(r.With.TotalCycles), "speedup")
}

// BenchmarkFig4ScheduleComparison regenerates Figure 4: Molecule
// availability under a good vs. a naive Atom schedule.
func BenchmarkFig4ScheduleComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4()
	}
}

// BenchmarkFig7SchedulerSweep regenerates Figure 7: execution time of the
// four SI schedulers encoding 140 CIF frames over 5–24 Atom Containers.
func BenchmarkFig7SchedulerSweep(b *testing.B) {
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(paperParams)
	}
	b.ReportMetric(float64(r.Cycles["HEF"][24])/1e6, "HEF-Mcycles-24ACs")
	b.ReportMetric(float64(r.Cycles["FSFR"][7])/1e6, "FSFR-Mcycles-7ACs")
}

// BenchmarkTable2Speedups regenerates Table 2: HEF vs ASF, ASF vs Molen and
// HEF vs Molen speedups over the AC range.
func BenchmarkTable2Speedups(b *testing.B) {
	var r *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(paperParams)
	}
	last := len(r.ACs) - 1
	b.ReportMetric(r.HEFvsMolen[last], "HEF-vs-Molen-24ACs")
	b.ReportMetric(r.AvgHEFvsMolen, "HEF-vs-Molen-avg")
	b.ReportMetric(r.HEFvsASF[last], "HEF-vs-ASF-24ACs")
	b.ReportMetric(r.ASFvsMolen[last], "ASF-vs-Molen-24ACs")
}

// BenchmarkFig8HEFDetail regenerates Figure 8: the HEF scheduler's latency
// steps and execution rates over the first two hot spots at 10 ACs.
func BenchmarkFig8HEFDetail(b *testing.B) {
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8()
	}
	b.ReportMetric(float64(r.Result.TotalCycles), "cycles")
}

// BenchmarkTable3Synthesis regenerates Table 3: the structural hardware
// cost of the HEF scheduler vs. the average Atom.
func BenchmarkTable3Synthesis(b *testing.B) {
	var r hwmodel.Resources
	for i := 0; i < b.N; i++ {
		r = hwmodel.HEFScheduler().Resources()
	}
	b.ReportMetric(float64(r.Slices), "slices")
	b.ReportMetric(float64(r.Mults), "MULT18X18")
	b.ReportMetric(r.ClockDelayNs, "clock-ns")
}

// BenchmarkSoftwareBaseline regenerates the Section 5 zero-AC data point
// (7,403M cycles for 140 frames).
func BenchmarkSoftwareBaseline(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.SoftwareBaseline(paperParams)
		cycles = res.TotalCycles
	}
	b.ReportMetric(float64(cycles)/1e6, "Mcycles")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the run-time components themselves (the parts that
// execute on the embedded processor / in the HEF hardware block).

func meRequests(b *testing.B) ([]sched.Request, molecule.Vector) {
	b.Helper()
	is := isa.H264()
	var reqs []sched.Request
	for _, si := range is.HotSpotSIs(isa.HotSpotME) {
		exp := int64(25641)
		if si.ID == isa.SISATD {
			exp = 6336
		}
		reqs = append(reqs, sched.Request{SI: si, Selected: si.Fastest(), Expected: exp})
	}
	return reqs, molecule.New(is.Dim())
}

// BenchmarkHEFSchedule measures one complete HEF scheduling decision for
// the ME hot spot — the work the 12-state FSM performs at hot-spot entry.
func BenchmarkHEFSchedule(b *testing.B) {
	reqs, avail := meRequests(b)
	s, _ := sched.New("HEF")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Schedule(reqs, avail)
	}
}

// BenchmarkAllSchedulers compares the software cost of the four strategies.
func BenchmarkAllSchedulers(b *testing.B) {
	reqs, avail := meRequests(b)
	for _, name := range sched.Names {
		s, _ := sched.New(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Schedule(reqs, avail)
			}
		})
	}
}

// BenchmarkMoleculeOps measures the lattice primitives the scheduler
// hardware implements.
func BenchmarkMoleculeOps(b *testing.B) {
	x := molecule.Of(4, 0, 8, 2, 2, 0, 4, 2, 2, 0, 4, 4)
	y := molecule.Of(0, 4, 4, 2, 2, 2, 0, 0, 2, 2, 0, 4)
	b.Run("Sup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Sup(y)
		}
	})
	b.Run("Monus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Sub(y)
		}
	})
	b.Run("Determinant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Determinant()
		}
	})
}

// BenchmarkSimulatorThroughput measures simulated cycles per wall second:
// one frame of the full system at 10 ACs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 1})
	res, err := Run(Config{Scheduler: "HEF", NumACs: 10, Workload: tr, SeedForecasts: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Scheduler: "HEF", NumACs: 10, Workload: tr, SeedForecasts: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TotalCycles), "simulated-cycles/op")
}

// BenchmarkWorkloadGeneration measures building the 140-frame CIF trace.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = workload.H264(workload.H264Config{})
	}
}

// ---------------------------------------------------------------------------
// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblationEviction compares Atom Container eviction policies on a
// short encode (10 ACs, HEF).
func BenchmarkAblationEviction(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 10})
	for _, pol := range []reconfig.EvictionPolicy{reconfig.EvictLRU, reconfig.EvictFIFO, reconfig.EvictRandom} {
		b.Run(pol.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := Config{Scheduler: "HEF", NumACs: 10, Workload: tr, SeedForecasts: true}
				cfg.Eviction = pol
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.TotalCycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkAblationMonitorShift sweeps the forecast smoothing α = 2^-shift
// on a varying-motion workload.
func BenchmarkAblationMonitorShift(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 10, MotionVariability: 0.3, Seed: 7, SceneChangeFrame: 5})
	for _, shift := range []uint{0, 1, 2, 4} {
		b.Run(string(rune('0'+shift)), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := Config{Scheduler: "HEF", NumACs: 10, Workload: tr, SeedForecasts: true, MonitorShift: shift}
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.TotalCycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkAblationSelection compares greedy vs. exhaustive Molecule
// selection (ME hot spot only, where the exhaustive search is tractable).
func BenchmarkAblationSelection(b *testing.B) {
	full := workload.H264(workload.H264Config{Frames: 4})
	var phases []workload.Phase
	for _, p := range full.Phases {
		if p.HotSpot == isa.HotSpotME {
			phases = append(phases, p)
		}
	}
	tr := &workload.Trace{Name: "me-only", Phases: phases}
	for _, mode := range []struct {
		name string
		ex   bool
	}{{"greedy", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := Config{Scheduler: "HEF", NumACs: 8, Workload: tr, SeedForecasts: true, ExhaustiveSelection: mode.ex}
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.TotalCycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkAblationHEFvsOptimal measures HEF's clairvoyant-rate cost against
// the exhaustive optimal schedule on the ME hot spot.
func BenchmarkAblationHEFvsOptimal(b *testing.B) {
	reqs, avail := meRequests(b)
	is := isa.H264()
	cost := func(a isa.AtomID) int64 { return int64(is.Atom(a).BitstreamBytes) }
	hef, _ := sched.New("HEF")
	e := sched.Exhaustive{Cost: cost}
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, optCost, err := e.Schedule(reqs, avail)
		if err != nil {
			b.Fatal(err)
		}
		hefCost := sched.EvalCost(hef.Schedule(reqs, avail), reqs, avail, cost)
		gap = float64(hefCost) / float64(optCost)
	}
	b.ReportMetric(gap, "HEF/optimal-cost-ratio")
}

// BenchmarkDivisionFreeBenefit compares the cross-multiplied benefit
// comparison (what the hardware implements) against the float division.
func BenchmarkDivisionFreeBenefit(b *testing.B) {
	e1, d1, c1 := int64(25641), 1096, 3
	e2, d2, c2 := int64(6336), 1548, 5
	b.Run("integer-cross-multiply", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if e1*int64(d1)*int64(c2) > e2*int64(d2)*int64(c1) {
				n++
			}
		}
		_ = n
	})
	b.Run("float-division", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if sched.BenefitFloat(e1, d1, 0, c1) > sched.BenefitFloat(e2, d2, 0, c2) {
				n++
			}
		}
		_ = n
	})
}

// BenchmarkAblationPrefetch measures reconfiguration prefetching in the
// regime where it can act: 4CIF frames (hot spots outlast reload windows)
// on a 40-container fabric (slack beyond each selection).
func BenchmarkAblationPrefetch(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 4, WidthMB: 44, HeightMB: 36})
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Scheduler: "HEF", NumACs: 40, Workload: tr,
					SeedForecasts: true, Prefetch: mode.on})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.TotalCycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkAblationBenefitNormalization compares the paper's benefit metric
// (improvement per additionally required Atom, Figure 6 line 20) against
// the unnormalized greedy that chases raw improvement.
func BenchmarkAblationBenefitNormalization(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 10})
	for _, name := range []string{"HEF", "HEF-unnorm"} {
		b.Run(name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Scheduler: name, NumACs: 14, Workload: tr, SeedForecasts: true})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.TotalCycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkAblationReconfigBandwidth sweeps the reconfiguration-port
// bandwidth around the prototype's SelectMap figure (the paper quotes
// 66 MB/s): slower ports lengthen the upgrade windows, which is where the
// HEF scheduler earns its advantage over the baseline.
func BenchmarkAblationReconfigBandwidth(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 10})
	for _, mbps := range []int64{33, 66, 132} {
		timing := reconfig.Timing{ClockHz: reconfig.DefaultClockHz, BandwidthBps: mbps * 1_000_000}
		b.Run(fmt.Sprintf("%dMBps", mbps), func(b *testing.B) {
			var hef, molen int64
			for i := 0; i < b.N; i++ {
				rh, err := Run(Config{Scheduler: "HEF", NumACs: 14, Workload: tr, SeedForecasts: true, Timing: timing})
				if err != nil {
					b.Fatal(err)
				}
				rm, err := Run(Config{Scheduler: "Molen", NumACs: 14, Workload: tr, SeedForecasts: true, Timing: timing})
				if err != nil {
					b.Fatal(err)
				}
				hef, molen = rh.TotalCycles, rm.TotalCycles
			}
			b.ReportMetric(float64(hef)/1e6, "HEF-Mcycles")
			b.ReportMetric(float64(molen)/float64(hef), "HEF-vs-Molen")
		})
	}
}

// BenchmarkAblationBusContention runs the encoder under shared-memory-bus
// contention (internal/membus): the busier the core's own memory traffic,
// the less bandwidth the reconfiguration DMA gets, the longer the upgrade
// windows — and the more the SI scheduler matters.
func BenchmarkAblationBusContention(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 10})
	for _, load := range []float64{0.0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("cpuload=%.1f", load), func(b *testing.B) {
			var hef, molen int64
			for i := 0; i < b.N; i++ {
				bus := &membus.Config{Policy: membus.CPUPriority, CPULoad: load}
				rh, err := Run(Config{Scheduler: "HEF", NumACs: 14, Workload: tr, SeedForecasts: true, Bus: bus})
				if err != nil {
					b.Fatal(err)
				}
				bus2 := &membus.Config{Policy: membus.CPUPriority, CPULoad: load}
				rm, err := Run(Config{Scheduler: "Molen", NumACs: 14, Workload: tr, SeedForecasts: true, Bus: bus2})
				if err != nil {
					b.Fatal(err)
				}
				hef, molen = rh.TotalCycles, rm.TotalCycles
			}
			b.ReportMetric(float64(hef)/1e6, "HEF-Mcycles")
			b.ReportMetric(float64(molen)/float64(hef), "HEF-vs-Molen")
		})
	}
}

// BenchmarkExploreParallel runs the Figure-7 scheduler × ACs grid through
// the design-space exploration engine sequentially (-j 1) and on the full
// worker pool, measuring the wall-clock scaling of internal/explore. The
// simulator is deterministic, so both variants compute identical results.
func BenchmarkExploreParallel(b *testing.B) {
	tr := workload.H264(workload.H264Config{Frames: 5})
	spec := explore.Spec{Schedulers: sched.Names, ACs: paperACs(), Frames: []int{5}}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				eng := Explorer(Config{Workload: tr}, workers, nil)
				res, err := eng.Execute(context.Background(), spec, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.FirstErr(); err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, rec := range res.Records {
					total += rec.TotalCycles
				}
			}
			b.ReportMetric(float64(len(spec.Schedulers)*len(spec.ACs)), "points")
			b.ReportMetric(float64(total)/1e9, "Gcycles-simulated")
		})
	}
}

// paperACs returns the paper's 5..24 Atom-Container range.
func paperACs() []int {
	var acs []int
	for n := 5; n <= 24; n++ {
		acs = append(acs, n)
	}
	return acs
}
