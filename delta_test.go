package rispp

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/sim"
)

// deltaGrid is a budget sweep over all six systems — the workload delta-
// resimulation is built for: consecutive points differ only in NumACs.
func deltaGrid() []explore.Point {
	var pts []explore.Point
	for _, s := range []string{"FSFR", "ASF", "SJF", "HEF", "Molen", "software"} {
		for _, acs := range []int{5, 10, 15, 24} {
			pts = append(pts, explore.Point{
				Scheduler: s, NumACs: acs, Frames: 1, SeedForecasts: true,
			})
		}
	}
	return pts
}

// TestDeltaSweepMatchesDisabled runs the same budget grid through a delta-
// enabled Runner and a delta-disabled one and requires identical results
// on every point — the end-to-end form of the transfer-legality property.
// The second pass over the grid must be served from trails alone.
func TestDeltaSweepMatchesDisabled(t *testing.T) {
	pts := deltaGrid()
	plain := NewRunner(Config{DisableDelta: true})
	delta := NewRunner(Config{})

	for pass := 0; pass < 2; pass++ {
		for i, p := range pts {
			want, got := new(sim.Result), new(sim.Result)
			if err := plain.RunPoint(context.Background(), p, sim.Options{}, want); err != nil {
				t.Fatalf("pass %d point %d: %v", pass, i, err)
			}
			if err := delta.RunPoint(context.Background(), p, sim.Options{}, got); err != nil {
				t.Fatalf("pass %d point %d: %v", pass, i, err)
			}
			if got.TotalCycles != want.TotalCycles || got.StallCycles != want.StallCycles {
				t.Errorf("pass %d, %s/%d ACs: cycles %d/%d, want %d/%d",
					pass, p.Scheduler, p.NumACs, got.TotalCycles, got.StallCycles,
					want.TotalCycles, want.StallCycles)
			}
			if !reflect.DeepEqual(got.Executions(), want.Executions()) {
				t.Errorf("pass %d, %s/%d ACs: Executions differ", pass, p.Scheduler, p.NumACs)
			}
			if !reflect.DeepEqual(got.Phases, want.Phases) {
				t.Errorf("pass %d, %s/%d ACs: Phases differ", pass, p.Scheduler, p.NumACs)
			}
		}
	}
	serves, resumes, records := delta.DeltaStats()
	if serves == 0 || records == 0 {
		t.Errorf("delta stats: serves=%d resumes=%d records=%d; want serves>0 and records>0",
			serves, resumes, records)
	}
	// Pass 2 repeated every point: at least the whole grid must have been
	// full-skipped.
	if serves < int64(len(pts)) {
		t.Errorf("serves = %d after repeating %d points, want ≥ %d", serves, len(pts), len(pts))
	}
}

// TestDeltaRunPointSetMatchesRunPoint: the grouped path must give the same
// results as point-wise runs when delta is on (it splits the set into
// skips/resumes/records internally).
func TestDeltaRunPointSetMatchesRunPoint(t *testing.T) {
	pts := deltaGrid()
	rn := NewRunner(Config{})
	want := make([]int64, len(pts))
	ref := NewRunner(Config{DisableDelta: true})
	for i, p := range pts {
		res := new(sim.Result)
		if err := ref.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatal(err)
		}
		want[i] = res.TotalCycles
	}
	for pass := 0; pass < 2; pass++ {
		results := make([]*sim.Result, len(pts))
		for i := range results {
			results[i] = new(sim.Result)
		}
		if err := rn.RunPointSet(context.Background(), pts, sim.Options{}, results); err != nil {
			t.Fatal(err)
		}
		for i := range pts {
			if results[i].TotalCycles != want[i] {
				t.Errorf("pass %d, %s/%d ACs: got %d cycles, want %d",
					pass, pts[i].Scheduler, pts[i].NumACs, results[i].TotalCycles, want[i])
			}
		}
	}
}

// TestDeltaJournalBytes: a point served from a trail must reproduce the
// journal byte-for-byte.
func TestDeltaJournalBytes(t *testing.T) {
	rn := NewRunner(Config{})
	p := explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true}
	var first, second bytes.Buffer
	res := new(sim.Result)
	if err := rn.RunPoint(context.Background(), p, sim.Options{Journal: &first}, res); err != nil {
		t.Fatal(err)
	}
	if err := rn.RunPoint(context.Background(), p, sim.Options{Journal: &second}, res); err != nil {
		t.Fatal(err)
	}
	serves, _, records := rn.DeltaStats()
	if records != 1 || serves != 1 {
		t.Errorf("delta stats: serves=%d records=%d, want 1/1", serves, records)
	}
	if first.Len() == 0 || !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("served journal differs from recorded one (%d vs %d bytes)", second.Len(), first.Len())
	}
}

// TestDeltaDisabledForIneligibleCollect: histogram/timeline runs bypass the
// trail layer entirely.
func TestDeltaDisabledForIneligibleCollect(t *testing.T) {
	rn := NewRunner(Config{})
	p := explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true}
	res := new(sim.Result)
	for i := 0; i < 2; i++ {
		if err := rn.RunPoint(context.Background(), p, sim.Options{HistogramBucket: 100_000}, res); err != nil {
			t.Fatal(err)
		}
	}
	if serves, resumes, records := rn.DeltaStats(); serves+resumes+records != 0 {
		t.Errorf("delta stats for ineligible collect: %d/%d/%d, want all zero", serves, resumes, records)
	}
	if hits, misses := rn.RuntimePoolStats(); hits != 1 || misses != 1 {
		t.Errorf("pool stats: hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestDeltaTrailConcurrentUse shares one delta-enabled Runner between
// serve-style point traffic and grouped sweeps, all budgets racing on the
// same trail sets, and checks every result against a per-goroutine
// reference from a delta-disabled Runner. Run under -race: it exercises
// concurrent trail recording (first-wins store), lock-free serving from
// immutable trails, and prefix-sharing resumes.
func TestDeltaTrailConcurrentUse(t *testing.T) {
	pts := deltaGrid()
	groups := map[string][]explore.Point{}
	for _, p := range pts {
		groups[p.Scheduler] = append(groups[p.Scheduler], p)
	}

	want := make(map[string]int64, len(pts))
	ref := NewRunner(Config{DisableDelta: true})
	for _, p := range pts {
		res := new(sim.Result)
		if err := ref.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatal(err)
		}
		want[p.Normalized().Key()] = res.TotalCycles
	}

	shared := NewRunner(Config{})
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if g%2 == 0 { // serve traffic: single points, out of phase
					for off := 0; off < len(pts); off++ {
						p := pts[(g+off)%len(pts)]
						res := shared.GetResult()
						if err := shared.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
							t.Errorf("goroutine %d: %v", g, err)
							return
						}
						if w := want[p.Normalized().Key()]; res.TotalCycles != w {
							t.Errorf("goroutine %d, %s/%d ACs: got %d cycles, want %d",
								g, p.Scheduler, p.NumACs, res.TotalCycles, w)
							return
						}
						shared.PutResult(res)
					}
					continue
				}
				for _, ps := range groups { // grouped sweeps
					results := make([]*sim.Result, len(ps))
					for i := range results {
						results[i] = shared.GetResult()
					}
					if err := shared.RunPointSet(context.Background(), ps, sim.Options{}, results); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					for i, p := range ps {
						if w := want[p.Normalized().Key()]; results[i].TotalCycles != w {
							t.Errorf("goroutine %d, %s/%d ACs: got %d cycles, want %d",
								g, p.Scheduler, p.NumACs, results[i].TotalCycles, w)
							return
						}
						shared.PutResult(results[i])
					}
				}
			}
		}(g)
	}
	wg.Wait()
	serves, resumes, records := shared.DeltaStats()
	if serves == 0 || records == 0 {
		t.Errorf("stress did not exercise the delta layer: serves=%d resumes=%d records=%d",
			serves, resumes, records)
	}
}
