package rispp

import (
	"bytes"
	"testing"

	"rispp/internal/sim"
	"rispp/internal/workload"
)

// TestJournalRoundTrip checks the machine-readable replay path end to end:
// a journal written during simulation must parse through sim.ReadJournal
// (the loader cmd/risppreplay uses) and reconstruct, via sim.Summarize,
// exactly the phase statistics the simulation itself reported.
func TestJournalRoundTrip(t *testing.T) {
	for _, scheduler := range []string{"HEF", "Molen"} {
		t.Run(scheduler, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{
				Scheduler:     scheduler,
				NumACs:        10,
				Workload:      workload.H264(workload.H264Config{Frames: 2}),
				SeedForecasts: true,
			}
			cfg.Collect.Journal = &buf
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			events, err := sim.ReadJournal(&buf)
			if err != nil {
				t.Fatalf("journal does not parse back: %v", err)
			}
			summary, err := sim.Summarize(events)
			if err != nil {
				t.Fatalf("journal does not summarize: %v", err)
			}

			if len(summary.Phases) != len(res.Phases) {
				t.Fatalf("replay has %d phases, simulation %d", len(summary.Phases), len(res.Phases))
			}
			for i, p := range res.Phases {
				jp := summary.Phases[i]
				if jp.HotSpot != int(p.HotSpot) || jp.Start != p.Start || jp.End != p.End {
					t.Errorf("phase %d: replay {hotspot %d, %d..%d} != simulation {hotspot %d, %d..%d}",
						i, jp.HotSpot, jp.Start, jp.End, int(p.HotSpot), p.Start, p.End)
				}
			}
			if last := summary.Phases[len(summary.Phases)-1]; last.End != res.TotalCycles {
				t.Errorf("replay final cycle %d != simulated total %d", last.End, res.TotalCycles)
			}

			// Atom-load events must appear, and re-reading the same byte
			// stream must be stable (the loader consumed the buffer above,
			// so re-run the simulation to regenerate it).
			var again bytes.Buffer
			cfg.Collect.Journal = &again
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			events2, err := sim.ReadJournal(&again)
			if err != nil {
				t.Fatal(err)
			}
			if len(events2) != len(events) {
				t.Errorf("journal not deterministic: %d events vs %d", len(events2), len(events))
			}
			if summary.Loads == 0 {
				t.Error("no Atom-load events in journal")
			}
		})
	}
}
