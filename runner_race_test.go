package rispp

import (
	"context"
	"sync"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/sim"
)

// racePoints mixes colliding and distinct design points: every scheduler
// appears at two AC budgets, and two workload-knob combinations force both
// memo hits (same knobs from many goroutines) and memo fills (first access
// per knob combination racing LoadOrStore).
func racePoints() []explore.Point {
	var pts []explore.Point
	for _, s := range []string{"HEF", "FSFR", "Molen", "software"} {
		for _, acs := range []int{2, 5} {
			for _, frames := range []int{1, 2} {
				pts = append(pts, explore.Point{
					Scheduler: s, NumACs: acs, Frames: frames,
					Seed: int64(frames), SeedForecasts: true,
				})
			}
		}
	}
	return pts
}

// TestRunnerConcurrentUseIsRaceFreeAndDeterministic hammers one shared
// Runner — its compiled-trace memo and its Result pool — from many
// goroutines, half through RunPoint with pooled Results and half through
// the EngineRun adapter, and checks every concurrent measurement against a
// sequential baseline. Run it under -race; it is cheap enough for -short.
func TestRunnerConcurrentUseIsRaceFreeAndDeterministic(t *testing.T) {
	pts := racePoints()
	base := Config{} // nil Workload: the point knobs build each trace

	// Sequential baseline through its own Runner.
	want := make([]int64, len(pts))
	seq := NewRunner(base)
	for i, p := range pts {
		res := new(sim.Result)
		if err := seq.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		want[i] = res.TotalCycles
	}

	shared := NewRunner(base)
	run := shared.EngineRun()
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for off := 0; off < len(pts); off++ {
					i := (g + off) % len(pts) // goroutines sweep out of phase
					var got int64
					if g%2 == 0 {
						res := shared.GetResult()
						if err := shared.RunPoint(context.Background(), pts[i], sim.Options{}, res); err != nil {
							errs <- err
							return
						}
						got = res.TotalCycles
						shared.PutResult(res)
					} else {
						m, err := run(context.Background(), pts[i])
						if err != nil {
							errs <- err
							return
						}
						got = m.TotalCycles
					}
					if got != want[i] {
						t.Errorf("goroutine %d, point %d (%s, %d ACs, %d frames): got %d cycles, want %d",
							g, i, pts[i].Scheduler, pts[i].NumACs, pts[i].Frames, got, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRuntimePoolConcurrentUseIsRaceFreeAndDeterministic hammers the
// runtime pool of one shared Runner from many goroutines, half via RunPoint
// (one pooled runtime at a time) and half via RunPointSet (a whole
// scheduler group of pooled runtimes held simultaneously for a single-pass
// walk), checking every result against a sequential baseline. Run under
// -race; cheap enough for -short.
func TestRuntimePoolConcurrentUseIsRaceFreeAndDeterministic(t *testing.T) {
	pts := racePoints()
	// Group the points the way the exploration engine would: same knobs,
	// different scheduler/ACs → one RunPointSet batch per frame count.
	groups := map[int][]explore.Point{}
	for _, p := range pts {
		groups[p.Frames] = append(groups[p.Frames], p)
	}

	want := make([]int64, len(pts))
	wantOf := make(map[string]int64, len(pts))
	seq := NewRunner(Config{})
	for i, p := range pts {
		res := new(sim.Result)
		if err := seq.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		want[i] = res.TotalCycles
		wantOf[p.Normalized().Key()] = res.TotalCycles
	}

	// Delta-resimulation would satisfy repeat points from trails without
	// requesting runtimes; disable it so this stress keeps hammering the
	// pool itself (TestDeltaTrailConcurrentUse covers the delta layer).
	shared := NewRunner(Config{DisableDelta: true})
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if g%2 == 0 {
					for off := 0; off < len(pts); off++ {
						i := (g + off) % len(pts)
						res := shared.GetResult()
						if err := shared.RunPoint(context.Background(), pts[i], sim.Options{}, res); err != nil {
							t.Errorf("goroutine %d: %v", g, err)
							return
						}
						if res.TotalCycles != want[i] {
							t.Errorf("goroutine %d, point %d: got %d cycles, want %d", g, i, res.TotalCycles, want[i])
							return
						}
						shared.PutResult(res)
					}
					continue
				}
				for _, ps := range groups {
					results := make([]*sim.Result, len(ps))
					for i := range results {
						results[i] = shared.GetResult()
					}
					if err := shared.RunPointSet(context.Background(), ps, sim.Options{}, results); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					for i, p := range ps {
						if w := wantOf[p.Normalized().Key()]; results[i].TotalCycles != w {
							t.Errorf("goroutine %d, point %s: got %d cycles, want %d",
								g, p.Key(), results[i].TotalCycles, w)
							return
						}
						shared.PutResult(results[i])
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if hits, misses := shared.RuntimePoolStats(); hits == 0 || misses == 0 {
		t.Errorf("stress did not exercise the pool: hits=%d misses=%d", hits, misses)
	}
}
