package rispp

import (
	"context"
	"sync"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/sim"
)

// racePoints mixes colliding and distinct design points: every scheduler
// appears at two AC budgets, and two workload-knob combinations force both
// memo hits (same knobs from many goroutines) and memo fills (first access
// per knob combination racing LoadOrStore).
func racePoints() []explore.Point {
	var pts []explore.Point
	for _, s := range []string{"HEF", "FSFR", "Molen", "software"} {
		for _, acs := range []int{2, 5} {
			for _, frames := range []int{1, 2} {
				pts = append(pts, explore.Point{
					Scheduler: s, NumACs: acs, Frames: frames,
					Seed: int64(frames), SeedForecasts: true,
				})
			}
		}
	}
	return pts
}

// TestRunnerConcurrentUseIsRaceFreeAndDeterministic hammers one shared
// Runner — its compiled-trace memo and its Result pool — from many
// goroutines, half through RunPoint with pooled Results and half through
// the EngineRun adapter, and checks every concurrent measurement against a
// sequential baseline. Run it under -race; it is cheap enough for -short.
func TestRunnerConcurrentUseIsRaceFreeAndDeterministic(t *testing.T) {
	pts := racePoints()
	base := Config{} // nil Workload: the point knobs build each trace

	// Sequential baseline through its own Runner.
	want := make([]int64, len(pts))
	seq := NewRunner(base)
	for i, p := range pts {
		res := new(sim.Result)
		if err := seq.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		want[i] = res.TotalCycles
	}

	shared := NewRunner(base)
	run := shared.EngineRun()
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for off := 0; off < len(pts); off++ {
					i := (g + off) % len(pts) // goroutines sweep out of phase
					var got int64
					if g%2 == 0 {
						res := shared.GetResult()
						if err := shared.RunPoint(context.Background(), pts[i], sim.Options{}, res); err != nil {
							errs <- err
							return
						}
						got = res.TotalCycles
						shared.PutResult(res)
					} else {
						m, err := run(context.Background(), pts[i])
						if err != nil {
							errs <- err
							return
						}
						got = m.TotalCycles
					}
					if got != want[i] {
						t.Errorf("goroutine %d, point %d (%s, %d ACs, %d frames): got %d cycles, want %d",
							g, i, pts[i].Scheduler, pts[i].NumACs, pts[i].Frames, got, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
