package rispp

import (
	"testing"

	"rispp/internal/experiments"
	"rispp/internal/video"
)

// TestPaperReproduction runs the complete Table 2 experiment (140 CIF
// frames, ACs 5–24) and asserts the headline shapes of the paper. It takes
// several seconds; skip with `go test -short`.
func TestPaperReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full 140-frame sweep; skipped with -short")
	}
	r := experiments.Table2(experiments.Params{})
	last := len(r.ACs) - 1

	// Paper: average HEF vs Molen 1.71x; ours lands within ±0.15.
	if r.AvgHEFvsMolen < 1.5 || r.AvgHEFvsMolen > 1.9 {
		t.Errorf("avg HEF vs Molen = %.2f, want ≈1.7 (paper 1.71)", r.AvgHEFvsMolen)
	}
	// Paper: maximum 2.38x at 24 ACs; ours must exceed 2x there.
	if r.HEFvsMolen[last] < 2.0 {
		t.Errorf("HEF vs Molen at %d ACs = %.2f, want > 2.0 (paper 2.38)", r.ACs[last], r.HEFvsMolen[last])
	}
	// Growth from ≈1x at 5 ACs to the maximum.
	if r.HEFvsMolen[0] > 1.2 {
		t.Errorf("HEF vs Molen at 5 ACs = %.2f, want ≈1.05 (paper 1.09)", r.HEFvsMolen[0])
	}
	for i := range r.ACs {
		if r.HEFvsASF[i] < 0.995 {
			t.Errorf("ACs=%d: HEF slower than ASF (%.3f)", r.ACs[i], r.HEFvsASF[i])
		}
		if r.ASFvsMolen[i] < 1.0 {
			t.Errorf("ACs=%d: ASF slower than Molen (%.3f)", r.ACs[i], r.ASFvsMolen[i])
		}
	}
}

// TestVideoDrivenEndToEnd exercises the full stack — synthetic video,
// motion-search front end, derived trace, RISPP runtime — and checks HEF
// still beats the baseline on content-dependent workloads.
func TestVideoDrivenEndToEnd(t *testing.T) {
	scene := video.Scene{Seed: 1, Objects: 4, PanX: 1.5, SceneChangeFrame: 4}
	tr := video.Trace(video.TraceConfig{Scene: scene, Frames: 6})

	totals := map[string]int64{}
	for _, system := range []string{"HEF", "Molen", "software"} {
		res, err := Run(Config{Workload: tr, Scheduler: system, NumACs: 12, SeedForecasts: true})
		if err != nil {
			t.Fatal(err)
		}
		totals[system] = res.TotalCycles
	}
	if totals["HEF"] >= totals["Molen"] {
		t.Errorf("HEF (%d) not faster than Molen (%d) on video-derived trace", totals["HEF"], totals["Molen"])
	}
	if totals["Molen"] >= totals["software"] {
		t.Errorf("Molen (%d) not faster than software (%d)", totals["Molen"], totals["software"])
	}
}
