package rispp

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/scenario"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// TestRunPointScenarioMatchesDirect: a scenario point through the Runner
// (with its memo, pools and delta layer) is field-exact identical to a
// plain Run under the scenario's ISA and expanded trace.
func TestRunPointScenarioMatchesDirect(t *testing.T) {
	rn := NewRunner(Config{})
	for _, name := range scenario.Names() {
		sc, _ := scenario.Find(name)
		p := explore.Point{Scheduler: "HEF", NumACs: 6, Frames: 3, Seed: 2,
			SeedForecasts: true, Scenario: name}
		got := new(sim.Result)
		if err := rn.RunPoint(context.Background(), p, sim.Options{}, got); err != nil {
			t.Fatalf("%s: RunPoint: %v", name, err)
		}
		want, err := Run(Config{
			ISA:           sc.ISA(),
			Workload:      sc.Trace(3, 2),
			Scheduler:     "HEF",
			NumACs:        6,
			SeedForecasts: true,
		})
		if err != nil {
			t.Fatalf("%s: direct Run: %v", name, err)
		}
		if got.TotalCycles != want.TotalCycles || got.StallCycles != want.StallCycles {
			t.Errorf("%s: Runner %d/%d cycles, direct %d/%d",
				name, got.TotalCycles, got.StallCycles, want.TotalCycles, want.StallCycles)
		}
		if !reflect.DeepEqual(got.Executions(), want.Executions()) {
			t.Errorf("%s: Executions differ between Runner and direct Run", name)
		}
	}
}

// TestRunPointScenarioReproducible: repeated runs of one scenario point —
// which exercise the compile memo, runtime pool, and the delta trail
// full-skip — stay field-exact.
func TestRunPointScenarioReproducible(t *testing.T) {
	rn := NewRunner(Config{})
	p := explore.Point{Scheduler: "HEF", NumACs: 8, Frames: 4, Seed: 1,
		SeedForecasts: true, Scenario: "video-crypto"}
	first := new(sim.Result)
	if err := rn.RunPoint(context.Background(), p, sim.Options{}, first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res := new(sim.Result)
		if err := rn.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatal(err)
		}
		if res.TotalCycles != first.TotalCycles ||
			!reflect.DeepEqual(res.Phases, first.Phases) {
			t.Fatalf("run %d diverged from first run", i)
		}
	}
	if serves, _, _ := rn.DeltaStats(); serves == 0 {
		t.Error("repeated scenario point never full-skipped from its trail")
	}
}

func TestRunPointScenarioErrors(t *testing.T) {
	ctx := context.Background()
	res := new(sim.Result)

	rn := NewRunner(Config{})
	err := rn.RunPoint(ctx, explore.Point{Scenario: "no-such"}, sim.Options{}, res)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario: err = %v", err)
	}

	err = rn.RunPoint(ctx, explore.Point{Scenario: "video-crypto", Motion: 0.5}, sim.Options{}, res)
	if err == nil || !strings.Contains(err.Error(), "H.264 knobs") {
		t.Errorf("scenario + motion: err = %v", err)
	}

	pinned := NewRunner(Config{Workload: workload.H264(workload.H264Config{Frames: 1})})
	err = pinned.RunPoint(ctx, explore.Point{Scenario: "video-crypto"}, sim.Options{}, res)
	if err == nil || !strings.Contains(err.Error(), "pins a workload") {
		t.Errorf("pinned base workload + scenario: err = %v", err)
	}
}

// TestRunPointSetScenario: the grouped single-pass path gives the same
// results as point-wise runs, and refuses sets that mix workloads.
func TestRunPointSetScenario(t *testing.T) {
	mk := func(sched string, acs int) explore.Point {
		return explore.Point{Scheduler: sched, NumACs: acs, Frames: 3, Seed: 1,
			SeedForecasts: true, Scenario: "early-exit-me"}
	}
	ps := []explore.Point{mk("FSFR", 6), mk("HEF", 6), mk("HEF", 10), mk("Molen", 6)}

	ref := NewRunner(Config{DisableDelta: true})
	want := make([]*sim.Result, len(ps))
	for i, p := range ps {
		want[i] = new(sim.Result)
		if err := ref.RunPoint(context.Background(), p, sim.Options{}, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	// DisableDelta forces the grouped single-pass walk (the delta path
	// degenerates to point-wise runs).
	rn := NewRunner(Config{DisableDelta: true})
	got := make([]*sim.Result, len(ps))
	for i := range got {
		got[i] = new(sim.Result)
	}
	if err := rn.RunPointSet(context.Background(), ps, sim.Options{}, got); err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if got[i].TotalCycles != want[i].TotalCycles ||
			!reflect.DeepEqual(got[i].Executions(), want[i].Executions()) {
			t.Errorf("point %d (%s/%d): grouped result differs from point-wise",
				i, ps[i].Scheduler, ps[i].NumACs)
		}
	}

	mixed := []explore.Point{mk("HEF", 6), {Scheduler: "HEF", NumACs: 6, Frames: 3, Seed: 1,
		SeedForecasts: true, Scenario: "branchy-modes"}}
	res := []*sim.Result{new(sim.Result), new(sim.Result)}
	if err := rn.RunPointSet(context.Background(), mixed, sim.Options{}, res); err == nil ||
		!strings.Contains(err.Error(), "disagree on workload") {
		t.Errorf("mixed-scenario set: err = %v", err)
	}
}

// TestScenarioPointKeys: the scenario name participates in the content
// address, and its absence leaves legacy keys byte-identical (so every
// pre-existing cache entry stays valid).
func TestScenarioPointKeys(t *testing.T) {
	base := explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 5, SeedForecasts: true}
	if k := base.Key(); strings.Contains(k, "scenario") {
		t.Errorf("non-scenario key mentions scenario: %s", k)
	}
	with := base
	with.Scenario = "video-crypto"
	if base.Hash() == with.Hash() {
		t.Error("scenario point hashes identical to H.264 point")
	}
	other := base
	other.Scenario = "video-pip"
	if with.Hash() == other.Hash() {
		t.Error("different scenarios share one hash")
	}
}

// TestCheckedScenarioExplore: a scenario sweep through the checked engine —
// every point validated against the oracle invariants under the scenario's
// (merged) ISA.
func TestCheckedScenarioExplore(t *testing.T) {
	eng := CheckedExplorer(Config{}, 2, nil)
	spec := explore.Spec{
		Schedulers: []string{"HEF", "Molen", "software"},
		ACs:        []int{8},
		Frames:     []int{3},
		Scenarios:  []string{"video-crypto", "scene-cut"},
	}
	res, err := eng.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatalf("checked scenario sweep: %v", err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("got %d records, want 6", len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.TotalCycles <= 0 {
			t.Errorf("point %s: non-positive cycles %d", rec.Point.Key(), rec.TotalCycles)
		}
	}
}
