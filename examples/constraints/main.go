// Varying constraints at run time (paper Section 1: the schedule "has to
// reflect these changing situations" — varying workloads, constraints):
// a thermal event halves the fabric budget mid-encode, the Run-Time
// Manager's Molecule selection shrinks to fit, and when the constraint
// lifts, the system ramps back up. No re-synthesis, no reboot — the
// dynamic instruction set adapts.
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// throttler drops the container budget during frames 5–9 (hot-spot entries
// 13–27 of the ME/EE/LF rotation) and restores it afterwards.
type throttler struct {
	*core.Manager
	entries int
}

func (t *throttler) EnterHotSpot(h isa.HotSpotID, now int64) {
	t.entries++
	switch t.entries {
	case 13: // start of frame 5
		fmt.Println(">>> thermal alarm: fabric budget drops from 16 to 5 Atom Containers")
		t.SetBudget(5)
	case 28: // start of frame 10
		fmt.Println(">>> cooled down: full fabric restored")
		t.SetBudget(16)
	}
	t.Manager.EnterHotSpot(h, now)
}

func main() {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 14})
	s, err := sched.New("HEF")
	if err != nil {
		log.Fatal(err)
	}
	mgr := core.NewManager(core.Config{ISA: is, NumACs: 16, Scheduler: s})
	mgr.SeedFromTrace(tr)

	res, err := sim.Run(tr, is, &throttler{Manager: mgr}, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntotal: %.1fM cycles\n\nper-frame encode time:\n", float64(res.TotalCycles)/1e6)
	frame, frameCycles := 1, int64(0)
	for i, p := range res.Phases {
		frameCycles += p.Cycles()
		if (i+1)%3 == 0 {
			note := ""
			switch frame {
			case 5:
				note = "   <- throttled to 5 ACs"
			case 10:
				note = "   <- full fabric again"
			}
			fmt.Printf("  frame %2d: %6.2fM cycles%s\n", frame, float64(frameCycles)/1e6, note)
			frame, frameCycles = frame+1, 0
		}
	}
}
