// Two applications time-share one RISPP fabric: a video encoder and a
// packet-crypto stack, interleaved (the camera pipeline encodes a frame,
// then the network stack encrypts it for transmission). isa.Merge combines
// the two dynamic instruction sets into one Atom space, and the Run-Time
// Manager arbitrates the Atom Containers between the applications' hot
// spots — the "varying workloads" scenario of the paper's introduction.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"rispp"
	"rispp/internal/isa"
	"rispp/internal/workload"
)

// cryptoISA is a compact encryption instruction set (see
// examples/adaptivecrypto for the richer standalone version).
func cryptoISA() *isa.ISA {
	spec := isa.MoleculeSpec{
		Atoms:    []isa.AtomID{0, 1, 2},
		Occ:      []int{16, 4, 4},
		HWCyc:    []int{1, 2, 1},
		SWCyc:    []int{30, 55, 18},
		Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1}},
		Overhead: 8,
		Count:    10,
	}
	is := &isa.ISA{
		Name: "crypto",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "SBox", BitstreamBytes: 52000, Slices: 300, LUTs: 590, FFs: 24},
			{ID: 1, Name: "MixCol", BitstreamBytes: 63000, Slices: 450, LUTs: 880, FFs: 40},
			{ID: 2, Name: "KeyXor", BitstreamBytes: 47000, Slices: 210, LUTs: 400, FFs: 16},
		},
		SIs: []isa.SI{{
			ID: 0, Name: "AES round", HotSpot: 0,
			SWLatency: spec.SWLatency(),
			Molecules: spec.Generate(0, 3),
		}},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "encrypt", SIs: []isa.SIID{0}}},
	}
	if err := is.Validate(); err != nil {
		log.Fatal(err)
	}
	return is
}

func main() {
	h264 := isa.H264()
	crypto := cryptoISA()
	merged, err := isa.Merge("video + crypto", h264, crypto)
	if err != nil {
		log.Fatal(err)
	}
	siOff, hsOff := isa.Offsets(h264, crypto)

	// Interleaved workload: per frame, the encoder's ME→EE→LF rotation is
	// followed by an encryption burst over the produced bitstream.
	frames := 20
	videoTrace := workload.H264(workload.H264Config{Frames: frames})
	b := workload.NewBuilder("video+crypto")
	for f := 0; f < frames; f++ {
		for p := 0; p < 3; p++ {
			src := videoTrace.Phases[f*3+p]
			b.Phase(src.HotSpot, src.Setup) // H.264 hot spots keep IDs (offset 0)
			for _, burst := range src.Bursts {
				b.Burst(burst.SI, burst.Count, burst.Gap)
			}
		}
		b.Phase(isa.HotSpotID(hsOff[1]), 20_000).
			Burst(isa.SIID(siOff[1]), 4000, 6) // encrypt the frame's bitstream
	}
	tr := b.Build()
	if err := tr.Validate(merged); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("merged ISA: %d Atom types, %d SIs, %d hot spots\n",
		merged.Dim(), len(merged.SIs), len(merged.HotSpots))
	fmt.Printf("workload: %d phases, %d SI executions\n\n", len(tr.Phases), tr.TotalExecutions())

	for _, acs := range []int{8, 14, 20} {
		line := fmt.Sprintf("ACs=%2d:", acs)
		for _, system := range []string{"HEF", "Molen", "software"} {
			res, err := rispp.Run(rispp.Config{
				ISA:           merged,
				Workload:      tr,
				Scheduler:     system,
				NumACs:        acs,
				SeedForecasts: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf("  %s=%6.1fM", system, float64(res.TotalCycles)/1e6)
		}
		fmt.Println(line)
	}
}
