// Visualize what the SI Scheduler does (paper Figure 8): run the first hot
// spots of one frame for every scheduler and print each SI's latency
// staircase and execution-rate sparkline, so the differences between FSFR,
// ASF, SJF and HEF become visible.
//
//	go run ./examples/schedulerviz -acs 10
package main

import (
	"flag"
	"fmt"
	"log"

	"rispp"
	"rispp/internal/isa"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

func main() {
	acs := flag.Int("acs", 10, "Atom Containers")
	flag.Parse()

	is := isa.H264()
	full := workload.H264(workload.H264Config{Frames: 1})
	two := &workload.Trace{Name: "me+ee", Phases: full.Phases[:2]}
	watch := []isa.SIID{isa.SISAD, isa.SISATD, isa.SIMC, isa.SIDCT}

	for _, scheduler := range rispp.Schedulers {
		cfg := rispp.Config{
			Scheduler:     scheduler,
			NumACs:        *acs,
			Workload:      two,
			SeedForecasts: true,
		}
		cfg.Collect.HistogramBucket = 100_000
		cfg.Collect.Timeline = true
		res, err := rispp.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s — ME+EE of one frame, %d ACs: %.2fM cycles ===\n",
			res.Runtime, *acs, float64(res.TotalCycles)/1e6)
		for _, si := range watch {
			events := res.Timeline.PerSI(int(si))
			fmt.Printf("  %-10s latency:", is.SI(si).Name)
			for _, e := range events {
				fmt.Printf(" %d@%.1fM", e.Latency, float64(e.Cycle)/1e6)
			}
			fmt.Println()
		}
		labels := []string{}
		series := [][]int64{}
		for _, si := range watch {
			labels = append(labels, "  "+is.SI(si).Name)
			series = append(series, res.Histogram.Counts(int(si)))
		}
		fmt.Print(stats.Chart(labels, series))
		fmt.Println()
	}
}
