// The RISPP concept is not limited to video encoding (paper Section 1).
// This example builds a custom dynamic instruction set for an adaptive
// network-security appliance that alternates between two hot spots with
// workload-dependent intensity:
//
//   - bulk encryption (AES-like round SIs: SubBytes/MixColumns pipelines),
//   - integrity hashing (SHA-like compression SIs),
//
// and shows the run-time system adapting the Atom loading to traffic that
// shifts from encryption-heavy to hash-heavy mid-run — the kind of
// non-predictable behaviour that defeats design-time specialization.
package main

import (
	"fmt"
	"log"

	"rispp"
	"rispp/internal/isa"
	"rispp/internal/workload"
)

// Atom types of the crypto ISA.
const (
	atomSBox   isa.AtomID = iota // S-box substitution slice
	atomMixCol                   // MixColumns GF(2^8) multiplier
	atomKeyXor                   // round-key XOR lanes
	atomSigma                    // SHA sigma/rotate unit
	atomCSA                      // carry-save adder tree
	numAtoms
)

// SIs and hot spots.
const (
	siAESRound isa.SIID = iota
	siAESKeyExp
	siSHACompress
)

const (
	hotEncrypt isa.HotSpotID = iota
	hotHash
)

func cryptoISA() *isa.ISA {
	specs := []struct {
		name    string
		hotSpot isa.HotSpotID
		spec    isa.MoleculeSpec
	}{
		{"AES round", hotEncrypt, isa.MoleculeSpec{
			Atoms:    []isa.AtomID{atomSBox, atomMixCol, atomKeyXor},
			Occ:      []int{16, 4, 4},
			HWCyc:    []int{1, 2, 1},
			SWCyc:    []int{30, 55, 18},
			Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1}},
			Overhead: 8,
			Count:    10,
		}},
		{"AES key expansion", hotEncrypt, isa.MoleculeSpec{
			Atoms:    []isa.AtomID{atomSBox, atomKeyXor},
			Occ:      []int{4, 8},
			HWCyc:    []int{1, 1},
			SWCyc:    []int{30, 18},
			Steps:    [][]int{{0, 1, 2}, {0, 1, 2}},
			Overhead: 6,
			Count:    5,
		}},
		{"SHA compress", hotHash, isa.MoleculeSpec{
			Atoms:    []isa.AtomID{atomSigma, atomCSA, atomKeyXor},
			Occ:      []int{16, 8, 4},
			HWCyc:    []int{1, 1, 1},
			SWCyc:    []int{26, 34, 18},
			Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1}},
			Overhead: 10,
			Count:    9,
		}},
	}
	is := &isa.ISA{
		Name: "adaptive crypto appliance",
		Atoms: []isa.AtomType{
			{ID: atomSBox, Name: "SBox", BitstreamBytes: 52000, Slices: 300, LUTs: 590, FFs: 24},
			{ID: atomMixCol, Name: "MixCol", BitstreamBytes: 63000, Slices: 450, LUTs: 880, FFs: 40},
			{ID: atomKeyXor, Name: "KeyXor", BitstreamBytes: 47000, Slices: 210, LUTs: 400, FFs: 16},
			{ID: atomSigma, Name: "Sigma", BitstreamBytes: 58000, Slices: 380, LUTs: 740, FFs: 36},
			{ID: atomCSA, Name: "CSA", BitstreamBytes: 55000, Slices: 340, LUTs: 660, FFs: 30},
		},
		HotSpots: []isa.HotSpot{
			{ID: hotEncrypt, Name: "bulk encryption", SIs: []isa.SIID{siAESRound, siAESKeyExp}},
			{ID: hotHash, Name: "integrity hashing", SIs: []isa.SIID{siSHACompress}},
		},
	}
	for i, d := range specs {
		id := isa.SIID(i)
		is.SIs = append(is.SIs, isa.SI{
			ID:        id,
			Name:      d.name,
			HotSpot:   d.hotSpot,
			SWLatency: d.spec.SWLatency(),
			Molecules: d.spec.Generate(id, int(numAtoms)),
		})
	}
	if err := is.Validate(); err != nil {
		log.Fatal(err)
	}
	return is
}

// trafficTrace models bursts of packets: initially encryption-heavy VPN
// traffic, then (after the "shift") hash-heavy storage traffic.
func trafficTrace(batches int, shiftAt int) *workload.Trace {
	b := workload.NewBuilder("adaptive-traffic")
	for i := 0; i < batches; i++ {
		encPackets, hashPackets := 900, 150
		if i >= shiftAt {
			encPackets, hashPackets = 200, 1100
		}
		b.Phase(hotEncrypt, 4000).
			Burst(siAESKeyExp, 16, 10).
			Burst(siAESRound, encPackets*10, 6) // 10 rounds per packet
		b.Phase(hotHash, 4000).
			Burst(siSHACompress, hashPackets*4, 6) // 4 blocks per packet
	}
	return b.Build()
}

func main() {
	is := cryptoISA()
	tr := trafficTrace(40, 20)

	for _, system := range []string{"HEF", "Molen", "software"} {
		res, err := rispp.Run(rispp.Config{
			ISA:           is,
			Workload:      tr,
			Scheduler:     system,
			NumACs:        6,
			SeedForecasts: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %7.2fM cycles\n", system, float64(res.TotalCycles)/1e6)
	}

	// Show the adaptation: per-SI hardware share with the HEF run-time.
	res, err := rispp.Run(rispp.Config{
		ISA: is, Workload: tr, Scheduler: "HEF", NumACs: 6, SeedForecasts: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHEF hardware share per SI (6 ACs, traffic shift at batch 20):")
	for i := range is.SIs {
		id := isa.SIID(i)
		total := res.ExecutionsOf(id)
		if total == 0 {
			continue
		}
		fmt.Printf("  %-18s %6.1f%% of %d executions\n",
			is.SI(id).Name, 100*float64(res.HWExecutionsOf(id))/float64(total), total)
	}
}
