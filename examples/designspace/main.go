// Design-space exploration: a designer has a slice budget on the FPGA and
// must split it between Atom Containers (1024 slices each), the HEF
// run-time scheduler block, and everything else. This example combines the
// hardware cost model with the analytic estimator and the cycle simulator
// to answer: how many containers are worth it, and does the run-time
// scheduler pay for its own area?
//
//	go run ./examples/designspace -slices 16384
package main

import (
	"flag"
	"fmt"
	"log"

	"rispp"
	"rispp/internal/estimate"
	"rispp/internal/hwmodel"
	"rispp/internal/isa"
	"rispp/internal/reconfig"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

func main() {
	budget := flag.Int("slices", hwmodel.SlicesOfXC2V3000, "slice budget of the target device")
	frames := flag.Int("frames", 20, "frames for the simulated check")
	flag.Parse()

	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: *frames})
	hef := hwmodel.HEFScheduler().Resources()
	baseOther := 4096 // base pipeline, memories, peripherals

	fmt.Printf("device budget: %d slices; base system %d; HEF scheduler %d\n\n",
		*budget, baseOther, hef.Slices)
	avail := *budget - baseOther - hef.Slices
	maxACs := avail / hwmodel.ACSlices
	if maxACs < 1 {
		log.Fatal("budget too small for a single Atom Container")
	}

	tb := &stats.Table{Header: []string{"#ACs", "slices used", "est. speedup", "simulated speedup"}}
	sw := tr.SoftwareCycles(is)
	best, bestACs := 0.0, 0
	for acs := 1; acs <= maxACs; acs += maxACs/12 + 1 {
		est := estimate.SpeedupEstimate(is, tr, acs, reconfig.DefaultTiming())
		res, err := rispp.Run(rispp.Config{Scheduler: "HEF", NumACs: acs, Workload: tr, SeedForecasts: true})
		if err != nil {
			log.Fatal(err)
		}
		simSp := float64(sw) / float64(res.TotalCycles)
		used := baseOther + hef.Slices + acs*hwmodel.ACSlices
		tb.AddRow(fmt.Sprint(acs), fmt.Sprint(used), fmt.Sprintf("%.2fx", est), fmt.Sprintf("%.2fx", simSp))
		if simSp > best {
			best, bestACs = simSp, acs
		}
	}
	fmt.Print(tb.String())

	// Is the HEF block worth its area? Compare best-HEF against spending
	// those slices differently: the ASF scheduler is (nearly) free in
	// hardware, so give its configuration the HEF block's slices back —
	// not even enough for one more container.
	resHEF, err := rispp.Run(rispp.Config{Scheduler: "HEF", NumACs: bestACs, Workload: tr, SeedForecasts: true})
	if err != nil {
		log.Fatal(err)
	}
	resASF, err := rispp.Run(rispp.Config{Scheduler: "ASF", NumACs: bestACs, Workload: tr, SeedForecasts: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat %d ACs: HEF %.1fM cycles vs ASF %.1fM cycles — the %d-slice HEF block buys %.1f%%\n",
		bestACs, float64(resHEF.TotalCycles)/1e6, float64(resASF.TotalCycles)/1e6, hef.Slices,
		100*(float64(resASF.TotalCycles)/float64(resHEF.TotalCycles)-1))
	fmt.Printf("(and it is smaller than one additional Atom Container: %d < %d slices)\n",
		hef.Slices, hwmodel.ACSlices)
}
