// The paper's headline experiment as an application: encode a CIF video
// sequence on a RISPP processor, sweeping the four SI schedulers and the
// Molen-like baseline over a range of Atom Container counts, and print the
// execution times (Figure 7) and speedups (Table 2).
//
// Flags allow shrinking the sweep for a quick look:
//
//	go run ./examples/h264encoder -frames 20 -acs 5,10,17,24
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"rispp"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

func main() {
	frames := flag.Int("frames", 140, "CIF frames to encode")
	acsFlag := flag.String("acs", "5,7,10,12,14,17,20,24", "comma-separated Atom Container counts")
	flag.Parse()

	var acs []int
	for _, f := range strings.Split(*acsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -acs element %q: %v", f, err)
		}
		acs = append(acs, n)
	}

	tr := workload.H264(workload.H264Config{Frames: *frames})
	systems := append(append([]string(nil), rispp.Schedulers...), "Molen")
	cycles, err := rispp.Sweep(rispp.Config{Workload: tr, SeedForecasts: true}, systems, acs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Encoding %d CIF frames — execution time [Mcycles]\n\n", *frames)
	tb := &stats.Table{Header: append([]string{"#ACs"}, systems...)}
	for _, n := range acs {
		row := []string{fmt.Sprint(n)}
		for _, s := range systems {
			row = append(row, fmt.Sprintf("%.1f", float64(cycles[s][n])/1e6))
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())

	fmt.Printf("\nSpeedups vs. the Molen-like baseline\n\n")
	tb2 := &stats.Table{Header: append([]string{"#ACs"}, rispp.Schedulers...)}
	for _, n := range acs {
		row := []string{fmt.Sprint(n)}
		for _, s := range rispp.Schedulers {
			row = append(row, stats.Speedup(cycles["Molen"][n], cycles[s][n]))
		}
		tb2.AddRow(row...)
	}
	fmt.Print(tb2.String())
}
