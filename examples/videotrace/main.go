// Encode a synthetic video scene end to end: render frames, run the toy
// motion-search front end to derive a content-dependent workload trace,
// and execute it on the RISPP run-time system. A scene change mid-sequence
// shifts the macroblock mix from inter to intra — exactly the
// "non-predictable application behaviour" the run-time system exists for —
// and the per-frame hot-spot durations show it adapting.
//
//	go run ./examples/videotrace
package main

import (
	"fmt"
	"log"

	"rispp"
	"rispp/internal/isa"
	"rispp/internal/video"
)

func main() {
	scene := video.Scene{
		Seed:             42,
		Objects:          5,
		PanX:             1.2,
		PanY:             0.4,
		SceneChangeFrame: 8,
	}
	tr := video.Trace(video.TraceConfig{Scene: scene, Frames: 14})
	fmt.Printf("derived trace: %d phases, %d SI executions\n\n", len(tr.Phases), tr.TotalExecutions())

	for _, system := range []string{"HEF", "Molen", "software"} {
		res, err := rispp.Run(rispp.Config{
			Workload:      tr,
			Scheduler:     system,
			NumACs:        12,
			SeedForecasts: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %8.2fM cycles\n", system, float64(res.TotalCycles)/1e6)
	}

	res, err := rispp.Run(rispp.Config{Workload: tr, Scheduler: "HEF", NumACs: 12, SeedForecasts: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-frame Motion Estimation duration (scene change after frame 8):")
	frame := 1
	for _, p := range res.Phases {
		if p.HotSpot != isa.HotSpotME {
			continue
		}
		marker := ""
		if frame == 9 {
			marker = "   <- first frame across the cut"
		}
		fmt.Printf("  frame %2d: %6.2fM cycles%s\n", frame, float64(p.Cycles())/1e6, marker)
		frame++
	}
}
