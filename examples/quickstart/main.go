// Quickstart: simulate the paper's H.264 encoder on a RISPP processor with
// 10 Atom Containers using the proposed HEF Special Instruction Scheduler,
// and compare against the plain base processor.
package main

import (
	"fmt"
	"log"

	"rispp"
	"rispp/internal/workload"
)

func main() {
	// Ten frames keep the quickstart instant; drop Workload to run the
	// paper's full 140-frame CIF sequence.
	tr := workload.H264(workload.H264Config{Frames: 10})

	hef, err := rispp.Run(rispp.Config{
		Scheduler:     "HEF",
		NumACs:        10,
		Workload:      tr,
		SeedForecasts: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	sw, err := rispp.Run(rispp.Config{Scheduler: "software", Workload: tr})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("base processor (0 ACs): %6.1fM cycles\n", float64(sw.TotalCycles)/1e6)
	fmt.Printf("RISPP/HEF (10 ACs):     %6.1fM cycles\n", float64(hef.TotalCycles)/1e6)
	fmt.Printf("speedup:                %6.2fx\n", float64(sw.TotalCycles)/float64(hef.TotalCycles))
}
