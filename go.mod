module rispp

go 1.22
